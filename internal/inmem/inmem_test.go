package inmem

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// samePoints compares two point sets ignoring order.
func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sameIntervals(a, b []record.Interval) bool {
	pa := make([]record.Point, len(a))
	pb := make([]record.Point, len(b))
	for i, iv := range a {
		pa[i] = iv.ToPoint()
	}
	for i, iv := range b {
		pb[i] = iv.ToPoint()
	}
	return samePoints(pa, pb)
}

func TestPSTMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 500} {
		pts := workload.UniformPoints(n, 1000, int64(n)+7)
		pst := NewPST(pts)
		if pst.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, pst.Len())
		}
		queries := workload.TwoSidedQueries(20, 1000, 0.1, 42)
		for _, q := range queries {
			got := pst.TwoSided(q.A, q.B)
			want := TwoSided(pts, q.A, q.B)
			if !samePoints(got, want) {
				t.Fatalf("n=%d 2-sided (%d,%d): got %d pts want %d", n, q.A, q.B, len(got), len(want))
			}
		}
		for _, q := range workload.ThreeSidedQueries(20, 1000, 0.3, 0.1, 43) {
			got := pst.ThreeSided(q.A1, q.A2, q.B)
			want := ThreeSided(pts, q.A1, q.A2, q.B)
			if !samePoints(got, want) {
				t.Fatalf("n=%d 3-sided (%d,%d,%d): got %d want %d", n, q.A1, q.A2, q.B, len(got), len(want))
			}
		}
	}
}

func TestPSTDuplicateCoordinates(t *testing.T) {
	// Many duplicate x values and y values must not confuse routing.
	var pts []record.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, record.Point{X: int64(i % 5), Y: int64(i % 7), ID: uint64(i)})
	}
	pst := NewPST(pts)
	for a := int64(-1); a <= 6; a++ {
		for b := int64(-1); b <= 8; b++ {
			got := pst.TwoSided(a, b)
			want := TwoSided(pts, a, b)
			if !samePoints(got, want) {
				t.Fatalf("corner (%d,%d): got %d want %d", a, b, len(got), len(want))
			}
		}
	}
}

func TestPSTProperty(t *testing.T) {
	f := func(raw []struct{ X, Y int16 }, a, b int16) bool {
		pts := make([]record.Point, len(raw))
		for i, r := range raw {
			pts[i] = record.Point{X: int64(r.X), Y: int64(r.Y), ID: uint64(i + 1)}
		}
		pst := NewPST(pts)
		return samePoints(pst.TwoSided(int64(a), int64(b)), TwoSided(pts, int64(a), int64(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentTreeMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 33, 400} {
		ivs := workload.UniformIntervals(n, 1000, 200, int64(n)+1)
		st := NewSegmentTree(ivs)
		if st.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, st.Len())
		}
		for _, q := range workload.StabQueries(50, 1300, 9) {
			got := st.Stab(q)
			want := Stab(ivs, q)
			if !sameIntervals(got, want) {
				t.Fatalf("n=%d stab %d: got %d want %d", n, q, len(got), len(want))
			}
		}
	}
}

func TestSegmentTreeEndpointsExact(t *testing.T) {
	ivs := []record.Interval{{Lo: 10, Hi: 20, ID: 1}, {Lo: 20, Hi: 30, ID: 2}, {Lo: 5, Hi: 10, ID: 3}}
	st := NewSegmentTree(ivs)
	for q, wantIDs := range map[int64][]uint64{
		9:  {3},
		10: {1, 3},
		20: {1, 2},
		30: {2},
		31: nil,
		4:  nil,
	} {
		got := st.Stab(q)
		ids := map[uint64]bool{}
		for _, iv := range got {
			ids[iv.ID] = true
		}
		if len(got) != len(wantIDs) {
			t.Fatalf("stab %d: got %v want ids %v", q, got, wantIDs)
		}
		for _, id := range wantIDs {
			if !ids[id] {
				t.Fatalf("stab %d: missing id %d in %v", q, id, got)
			}
		}
	}
}

func TestSegmentTreeIgnoresInvalid(t *testing.T) {
	ivs := []record.Interval{
		{Lo: 10, Hi: 5, ID: 1},            // inverted
		{Lo: 0, Hi: math.MaxInt64, ID: 2}, // would overflow the +1 mapping
		{Lo: 1, Hi: 3, ID: 3},             // fine
	}
	st := NewSegmentTree(ivs)
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if got := st.Stab(2); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("stab 2 = %v", got)
	}
}

func TestSegmentTreeStoredIsNLogN(t *testing.T) {
	n := 1024
	ivs := workload.UniformIntervals(n, 100000, 30000, 5)
	st := NewSegmentTree(ivs)
	// Each interval is stored on at most 2*ceil(log2(#leaves)) nodes.
	leaves := 2 * n
	maxCopies := 2 * (bitsLen(leaves) + 1)
	if st.Stored() > n*maxCopies {
		t.Fatalf("stored %d copies for %d intervals (max per interval %d)", st.Stored(), n, maxCopies)
	}
	if st.Stored() < n {
		t.Fatalf("stored %d < n=%d: intervals lost", st.Stored(), n)
	}
}

func bitsLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

func TestIntervalTreeMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 33, 400} {
		ivs := workload.UniformIntervals(n, 1000, 200, int64(n)+2)
		it := NewIntervalTree(ivs)
		if it.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, it.Len())
		}
		for _, q := range workload.StabQueries(50, 1300, 11) {
			got := it.Stab(q)
			want := Stab(ivs, q)
			if !sameIntervals(got, want) {
				t.Fatalf("n=%d stab %d: got %d want %d", n, q, len(got), len(want))
			}
		}
	}
}

func TestIntervalTreeNested(t *testing.T) {
	ivs := workload.NestedIntervals(300, 40, 1_000_000, 3)
	it := NewIntervalTree(ivs)
	st := NewSegmentTree(ivs)
	for _, q := range workload.StabQueries(100, 1_000_000, 13) {
		want := Stab(ivs, q)
		if got := it.Stab(q); !sameIntervals(got, want) {
			t.Fatalf("interval tree stab %d: got %d want %d", q, len(got), len(want))
		}
		if got := st.Stab(q); !sameIntervals(got, want) {
			t.Fatalf("segment tree stab %d: got %d want %d", q, len(got), len(want))
		}
	}
}

func TestIntervalTreeProperty(t *testing.T) {
	f := func(raw []struct{ Lo, Len uint8 }, q uint8) bool {
		ivs := make([]record.Interval, len(raw))
		for i, r := range raw {
			ivs[i] = record.Interval{Lo: int64(r.Lo), Hi: int64(r.Lo) + int64(r.Len), ID: uint64(i + 1)}
		}
		it := NewIntervalTree(ivs)
		return sameIntervals(it.Stab(int64(q)), Stab(ivs, int64(q)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentTreeProperty(t *testing.T) {
	f := func(raw []struct{ Lo, Len uint8 }, q uint8) bool {
		ivs := make([]record.Interval, len(raw))
		for i, r := range raw {
			ivs[i] = record.Interval{Lo: int64(r.Lo), Hi: int64(r.Lo) + int64(r.Len), ID: uint64(i + 1)}
		}
		st := NewSegmentTree(ivs)
		return sameIntervals(st.Stab(int64(q)), Stab(ivs, int64(q)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
