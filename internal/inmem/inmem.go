// Package inmem implements the classical main-memory data structures the
// paper transforms into external ones — the segment tree [Ben], the interval
// tree [Ede], and the priority search tree [McC] — together with brute-force
// scans. They play two roles in this repository: correctness oracles for the
// external structures, and the "in-core side" of the path-caching
// transformation for documentation and examples.
//
// All interval semantics are closed ([Lo, Hi] contains q iff Lo <= q <= Hi),
// and 2-sided queries are the paper's quadrant {x >= a, y >= b}.
package inmem

import (
	"math"
	"sort"

	"pathcache/internal/record"
)

// TwoSided brute-force: all points with X >= a and Y >= b.
func TwoSided(pts []record.Point, a, b int64) []record.Point {
	var out []record.Point
	for _, p := range pts {
		if p.X >= a && p.Y >= b {
			out = append(out, p)
		}
	}
	return out
}

// ThreeSided brute-force: all points with a1 <= X <= a2 and Y >= b.
func ThreeSided(pts []record.Point, a1, a2, b int64) []record.Point {
	var out []record.Point
	for _, p := range pts {
		if p.X >= a1 && p.X <= a2 && p.Y >= b {
			out = append(out, p)
		}
	}
	return out
}

// Stab brute-force: all intervals containing q.
func Stab(ivs []record.Interval, q int64) []record.Interval {
	var out []record.Interval
	for _, iv := range ivs {
		if iv.Contains(q) {
			out = append(out, iv)
		}
	}
	return out
}

// SortPointsByX sorts points by (X, Y, ID) in place.
func SortPointsByX(pts []record.Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
}

// PST is McCreight's priority search tree: a balanced binary search tree on
// x that is simultaneously a max-heap on y. It answers 3-sided queries
// {a1 <= x <= a2, y >= b} in O(log n + t) and uses O(n) space.
type PST struct {
	root *pstNode
	n    int
}

type pstNode struct {
	pt          record.Point // the max-y point of this subtree's point set
	split       int64        // x-median routing key of the remaining points
	left, right *pstNode
}

// NewPST builds a priority search tree over pts. The input slice is not
// modified.
func NewPST(pts []record.Point) *PST {
	sorted := append([]record.Point(nil), pts...)
	SortPointsByX(sorted)
	return &PST{root: buildPST(sorted), n: len(pts)}
}

// buildPST consumes points sorted by x. It extracts the max-y point for the
// node and splits the remainder at the x-median.
func buildPST(sorted []record.Point) *pstNode {
	if len(sorted) == 0 {
		return nil
	}
	// Find max-y point (ties broken by position for determinism).
	best := 0
	for i := range sorted {
		if sorted[i].Y > sorted[best].Y {
			best = i
		}
	}
	n := &pstNode{pt: sorted[best]}
	rest := make([]record.Point, 0, len(sorted)-1)
	rest = append(rest, sorted[:best]...)
	rest = append(rest, sorted[best+1:]...)
	if len(rest) == 0 {
		n.split = n.pt.X
		return n
	}
	mid := len(rest) / 2
	n.split = rest[mid].X
	n.left = buildPST(rest[:mid])
	n.right = buildPST(rest[mid:])
	return n
}

// Len reports the number of points.
func (t *PST) Len() int { return t.n }

// ThreeSided reports all points with a1 <= x <= a2 and y >= b.
func (t *PST) ThreeSided(a1, a2, b int64) []record.Point {
	var out []record.Point
	var walk func(n *pstNode)
	walk = func(n *pstNode) {
		if n == nil || n.pt.Y < b {
			// Heap order: everything below has y <= n.pt.Y < b.
			return
		}
		if n.pt.X >= a1 && n.pt.X <= a2 {
			out = append(out, n.pt)
		}
		// Left subtree holds points with x <= split, right with x >= split.
		if a1 <= n.split {
			walk(n.left)
		}
		if a2 >= n.split {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// TwoSided reports all points with x >= a and y >= b (the paper's 2-sided
// quadrant query).
func (t *PST) TwoSided(a, b int64) []record.Point {
	return t.ThreeSided(a, math.MaxInt64, b)
}

// SegmentTree is Bentley's segment tree over a static set of closed integer
// intervals, answering stabbing queries in O(log n + t) with O(n log n)
// space. Closed intervals [lo,hi] are handled exactly by working with the
// half-open integer intervals [lo, hi+1).
type SegmentTree struct {
	ends   []int64 // sorted unique elementary boundaries
	root   *segNode
	n      int
	stored int // total interval copies across all cover lists
}

type segNode struct {
	lo, hi      int // elementary range [ends[lo], ends[hi]) as index span
	cover       []record.Interval
	left, right *segNode
}

// NewSegmentTree builds a segment tree over ivs. Intervals must satisfy
// Lo <= Hi and Hi < MaxInt64 (the +1 of the half-open mapping must not
// overflow); invalid intervals are ignored.
func NewSegmentTree(ivs []record.Interval) *SegmentTree {
	var bounds []int64
	valid := make([]record.Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Valid() || iv.Hi == math.MaxInt64 {
			continue
		}
		valid = append(valid, iv)
		bounds = append(bounds, iv.Lo, iv.Hi+1)
	}
	t := &SegmentTree{ends: sortedUnique(bounds), n: len(valid)}
	if len(t.ends) >= 2 {
		t.root = t.buildSeg(0, len(t.ends)-1)
		for _, iv := range valid {
			t.insert(t.root, iv)
		}
	}
	return t
}

func sortedUnique(xs []int64) []int64 {
	if len(xs) == 0 {
		return nil
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func (t *SegmentTree) buildSeg(lo, hi int) *segNode {
	n := &segNode{lo: lo, hi: hi}
	if hi-lo > 1 {
		mid := (lo + hi) / 2
		n.left = t.buildSeg(lo, mid)
		n.right = t.buildSeg(mid, hi)
	}
	return n
}

// insert places iv on every allocation node: nodes whose elementary span is
// contained in iv but whose parent's span is not.
func (t *SegmentTree) insert(n *segNode, iv record.Interval) {
	nLo, nHi := t.ends[n.lo], t.ends[n.hi]
	if iv.Lo <= nLo && nHi <= iv.Hi+1 {
		n.cover = append(n.cover, iv)
		t.stored++
		return
	}
	if n.left == nil {
		return
	}
	mid := t.ends[(n.lo+n.hi)/2]
	if iv.Lo < mid {
		t.insert(n.left, iv)
	}
	if iv.Hi+1 > mid {
		t.insert(n.right, iv)
	}
}

// Stab reports all intervals containing q.
func (t *SegmentTree) Stab(q int64) []record.Interval {
	var out []record.Interval
	if t.root == nil || q < t.ends[0] || q >= t.ends[len(t.ends)-1] {
		return out
	}
	for n := t.root; n != nil; {
		out = append(out, n.cover...)
		if n.left == nil {
			break
		}
		if q < t.ends[(n.lo+n.hi)/2] {
			n = n.left
		} else {
			n = n.right
		}
	}
	return out
}

// Len reports the number of indexed intervals.
func (t *SegmentTree) Len() int { return t.n }

// Stored reports the total number of interval copies across cover lists —
// the O(n log n) the paper's space analysis charges.
func (t *SegmentTree) Stored() int { return t.stored }

// IntervalTree is Edelsbrunner's interval tree: intervals hang off the
// highest node whose center they contain, in two sorted lists. Stabbing is
// O(log n + t) with O(n) space.
type IntervalTree struct {
	root *itvNode
	n    int
}

type itvNode struct {
	center      int64
	byLo        []record.Interval // sorted by Lo ascending
	byHi        []record.Interval // sorted by Hi descending
	left, right *itvNode
}

// NewIntervalTree builds an interval tree over ivs. Invalid intervals
// (Lo > Hi) are ignored.
func NewIntervalTree(ivs []record.Interval) *IntervalTree {
	valid := make([]record.Interval, 0, len(ivs))
	var pts []int64
	for _, iv := range ivs {
		if iv.Valid() {
			valid = append(valid, iv)
			pts = append(pts, iv.Lo, iv.Hi)
		}
	}
	return &IntervalTree{root: buildItv(valid, sortedUnique(pts)), n: len(valid)}
}

func buildItv(ivs []record.Interval, endpoints []int64) *itvNode {
	if len(ivs) == 0 || len(endpoints) == 0 {
		return nil
	}
	center := endpoints[len(endpoints)/2]
	n := &itvNode{center: center}
	var leftIvs, rightIvs []record.Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi < center:
			leftIvs = append(leftIvs, iv)
		case iv.Lo > center:
			rightIvs = append(rightIvs, iv)
		default:
			n.byLo = append(n.byLo, iv)
		}
	}
	n.byHi = append([]record.Interval(nil), n.byLo...)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].Lo < n.byLo[j].Lo })
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].Hi > n.byHi[j].Hi })
	n.left = buildItv(leftIvs, endpoints[:len(endpoints)/2])
	n.right = buildItv(rightIvs, endpoints[len(endpoints)/2+1:])
	return n
}

// Stab reports all intervals containing q.
func (t *IntervalTree) Stab(q int64) []record.Interval {
	var out []record.Interval
	for n := t.root; n != nil; {
		switch {
		case q < n.center:
			for _, iv := range n.byLo {
				if iv.Lo > q {
					break
				}
				out = append(out, iv)
			}
			n = n.left
		case q > n.center:
			for _, iv := range n.byHi {
				if iv.Hi < q {
					break
				}
				out = append(out, iv)
			}
			n = n.right
		default:
			out = append(out, n.byLo...)
			return out
		}
	}
	return out
}

// Len reports the number of indexed intervals.
func (t *IntervalTree) Len() int { return t.n }
