package obs

import (
	"sort"
	"sync"
	"time"
)

// Serve-side series: the metric surface of the network serving layer
// (internal/server). These are built on the standalone primitives —
// Counter, Gauge, Histogram — and deliberately NOT on Registry: a store's
// Registry records index operations with exact op-scoped I/O, while these
// series record HTTP request lifecycles (admission decisions, status
// codes, latencies). Keeping the two apart preserves the invariant the
// concurrency tests pin (per-op histogram sums equal the store-level
// Stats diff) and keeps internal/server inside the obsdiscipline
// analyzer's rules.

// ServeSeries aggregates one server endpoint's request outcomes: a counter
// per status class, a log₂ latency distribution in microseconds, and the
// result sizes served. The zero value is NOT ready — use NewServeSet.
type ServeSeries struct {
	requests  Counter
	failures  Counter // status >= 400
	results   Counter
	latencyUS Histogram
}

// ServeSet is a concurrent map of endpoint name to ServeSeries plus the
// server-wide admission counters. All methods are safe for concurrent use.
type ServeSet struct {
	mu     sync.RWMutex
	series map[string]*ServeSeries

	// Admission outcomes, server-wide: requests turned away before any
	// store work happened.
	QuotaDenials    Counter // 429: per-client token bucket empty
	OverloadDenials Counter // 429: max-inflight ceiling hit
	DrainDenials    Counter // 503: received while draining
	Inflight        Gauge   // requests between admission and response
}

// NewServeSet returns an empty serve-side metric set.
func NewServeSet() *ServeSet {
	return &ServeSet{series: make(map[string]*ServeSeries)}
}

// Observe records one completed request against endpoint: its HTTP status,
// result count and latency. hint spreads counter stripes (pass anything
// cheap and varied, e.g. a sequence number).
func (s *ServeSet) Observe(endpoint string, status int, results int, d time.Duration, hint uint64) {
	sr := s.seriesFor(endpoint)
	sr.requests.Add(hint, 1)
	if status >= 400 {
		sr.failures.Add(hint, 1)
	}
	sr.results.Add(hint, int64(results))
	sr.latencyUS.Observe(d.Microseconds())
}

func (s *ServeSet) seriesFor(endpoint string) *ServeSeries {
	s.mu.RLock()
	sr := s.series[endpoint]
	s.mu.RUnlock()
	if sr != nil {
		return sr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sr = s.series[endpoint]; sr == nil {
		sr = &ServeSeries{}
		s.series[endpoint] = sr
	}
	return sr
}

// ServeSeriesSnapshot is the point-in-time state of one endpoint's series.
type ServeSeriesSnapshot struct {
	Endpoint  string
	Requests  int64
	Failures  int64
	Results   int64
	LatencyUS HistSnapshot
}

// ServeSnapshot copies the whole serve-side metric surface.
type ServeSnapshot struct {
	QuotaDenials    int64
	OverloadDenials int64
	DrainDenials    int64
	Inflight        int64
	Endpoints       []ServeSeriesSnapshot // sorted by endpoint name
}

// Snapshot copies every endpoint series plus the admission counters,
// endpoints sorted by name for deterministic rendering.
func (s *ServeSet) Snapshot() ServeSnapshot {
	out := ServeSnapshot{
		QuotaDenials:    s.QuotaDenials.Total(),
		OverloadDenials: s.OverloadDenials.Total(),
		DrainDenials:    s.DrainDenials.Total(),
		Inflight:        s.Inflight.Load(),
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		s.mu.RLock()
		sr := s.series[name]
		s.mu.RUnlock()
		out.Endpoints = append(out.Endpoints, ServeSeriesSnapshot{
			Endpoint:  name,
			Requests:  sr.requests.Total(),
			Failures:  sr.failures.Total(),
			Results:   sr.results.Total(),
			LatencyUS: sr.latencyUS.Snapshot(),
		})
	}
	return out
}
