// Package obs is the observability core of the storage stack: per-operation
// metric series (counters, gauges and log₂-bucketed histograms), a Tracer
// hook surface, and the runtime theorem-bound sentinels.
//
// Every index operation — a serial query, one batch worker's query, a build
// — is recorded as one Op: the engine hands the operation an op-scoped
// disk.Counter, and when the operation finishes its exact page transfers,
// cache hits, result count and duration land in the Registry owned by that
// store's engine backend. Because the per-op counts partition the
// store-level aggregate exactly (see internal/disk.WithCounter), the
// histogram totals sum to the store's Stats() diff over the same window —
// the invariant the concurrency tests pin.
//
// Bound sentinels make the paper's theorems executable: each registered
// index kind declares its I/O-bound function (for example
// ⌈log_B n⌉ + t/B page reads for a 2-sided query, Theorem 3.2), every
// operation records its measured-reads/bound ratio into a histogram, and in
// strict mode an operation whose reads exceed MaxRatio·bound + Slack fails
// with a *BoundError wrapping ErrBoundExceeded and carrying the full op
// trace. The package is stdlib-only and safe under -race.
package obs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SerialWorker tags operations that run outside any batch worker pool.
const SerialWorker = -1

// Default sentinel constants: an operation may spend up to
// DefaultMaxRatio× its declared bound plus DefaultSlack pages before strict
// mode trips. The paper's theorems fix the shape (O(log_B n + t/B)); the
// constants absorb the implementation's additive terms (root pages, cache
// directories, the two-level region lookup).
const (
	DefaultMaxRatio = 4.0
	DefaultSlack    = 8.0
)

// ErrBoundExceeded reports an operation whose measured I/O breached its
// declared theorem bound under strict mode. It is wrapped by *BoundError,
// which carries the offending operation's trace. The text carries the
// public package's prefix because the pathcache package re-exports this
// sentinel; callers return it as-is, not re-wrapped.
var ErrBoundExceeded = errors.New("pathcache: I/O bound exceeded")

// BoundFunc is a theorem's I/O bound in page reads for one operation over
// an index of n records with page capacity b returning t results. Bound
// functions are pure and cheap; the engine's registry descriptor declares
// one per index kind.
type BoundFunc func(n, b, t int) float64

// LogBBound is ⌈log_b n⌉ + t/b — the paper's optimal query bound
// (Theorems 3.2–3.5): an O(log_B n) search term plus the output term.
func LogBBound(n, b, t int) float64 {
	return float64(ceilLog(n, b)) + outputTerm(t, b)
}

// RangeTreeBound is ⌈log₂(n/b)⌉ + t/b — the window index's range-tree
// query bound (this repository's 4-sided extension).
func RangeTreeBound(n, b, t int) float64 {
	if b < 1 {
		b = 1
	}
	leaves := (n + b - 1) / b
	return float64(ceilLog(leaves, 2)) + outputTerm(t, b)
}

// LSMBound is the write tier's query bound: O(log(n/B)) occupied levels
// each paying one static search, plus the tombstone-chain scan and the
// output term — O(log(n/B)·bound_static + t/B). This form is the registry's
// static worst-case estimate; the write tier records each operation against
// LSMBoundAt with its actual level count and tombstone-chain length.
func LSMBound(n, b, t int) float64 {
	if b < 1 {
		b = 1
	}
	levels := ceilLog((n+b-1)/b, 2)
	// Tombstones are capped at b·⌈log_b n⌉, hence ⌈log_b n⌉+1 chain pages.
	return LSMBoundAt(levels, ceilLog(n, b)+1, n, b, t)
}

// LSMBoundAt is LSMBound evaluated at a known level count and tombstone
// chain length. The per-level search term ⌈log₂(n/b)⌉+2 dominates every
// base kind's own search term (⌈log_b n⌉ for the path-cached structures,
// ⌈log₂(n/b)⌉ for the range tree), and the output term is paid once — the
// t results are partitioned across levels.
func LSMBoundAt(levels, tombPages, n, b, t int) float64 {
	if levels < 1 {
		levels = 1
	}
	if b < 1 {
		b = 1
	}
	per := float64(ceilLog((n+b-1)/b, 2)) + 2
	return float64(levels)*per + float64(tombPages) + 2 + outputTerm(t, b)
}

// ceilLog is ⌈log_base n⌉, at least 1, matching the experiment harness's
// search-term arithmetic.
func ceilLog(n, base int) int {
	if base < 2 {
		base = 2
	}
	r := 1
	for v := 1; v < n; v *= base {
		r++
	}
	return r
}

func outputTerm(t, b int) float64 {
	if b < 1 {
		b = 1
	}
	return float64(t) / float64(b)
}

// Op identifies one in-flight operation: the index kind it ran against, the
// operation name ("query", "stab", "build"), the batch worker that executed
// it (SerialWorker outside batches), a registry-unique sequence number, and
// its start time.
type Op struct {
	Kind   string
	Name   string
	Worker int
	Seq    uint64
	Start  time.Time
}

// Event is the completed-operation record handed to Tracer.OpEnd and
// embedded in BoundError: the Op plus its exact measured I/O, output size,
// duration, declared bound and measured/bound ratio (0 when the kind
// declares no bound).
type Event struct {
	Op
	Reads     int64
	Writes    int64
	CacheHits int64
	Results   int
	Duration  time.Duration
	Bound     float64
	Ratio     float64
}

// Tracer receives operation lifecycle events. Implementations must be safe
// for concurrent use: batch workers emit events in parallel. A Tracer
// observes; it cannot veto.
type Tracer interface {
	OpStart(Op)
	OpEnd(Event)
}

// Measure is what the instrumentation layer hands End: the op-scoped
// counter's totals plus the operation's output size and declared bound.
type Measure struct {
	Reads     int64
	Writes    int64
	CacheHits int64
	Results   int
	Bound     float64
}

// seriesKey identifies one metric series: operation name plus the batch
// worker that ran it, so batch workers get tagged per-worker series while
// serial operations aggregate under SerialWorker.
type seriesKey struct {
	name   string
	worker int
}

// series is the per-(op, worker) metric bundle.
type series struct {
	kind    string
	ops     Counter
	results Counter
	reads   Histogram
	writes  Histogram
	hits    Histogram
	// ratios holds ⌈ratio·100⌉ per op, so the log₂ buckets resolve the
	// interesting range (is the ratio 0.5, 1, 2, or 10?) without floats.
	ratios       Histogram
	maxRatioBits atomic.Uint64 // math.Float64bits of the max ratio (non-negative)
}

// tracerBox wraps a Tracer for atomic.Value storage (which requires a
// single concrete stored type).
type tracerBox struct{ t Tracer }

// Registry is one store's metric surface. The engine creates one per
// backend; index operations are recorded through Begin/End, and Snapshot
// serves the public Metrics API. All methods are safe for concurrent use.
//
// Mutation is disciplined: only internal/engine and the public pathcache
// layer may drive Begin/End/Set* on a backend's registry (enforced by the
// obsdiscipline analyzer), because an op recorded outside the engine's
// op-counter seam would break the histograms-sum-to-store-diff invariant.
type Registry struct {
	seq      atomic.Uint64
	inflight Gauge

	strict       atomic.Bool
	maxRatioBits atomic.Uint64 // math.Float64bits; 0 means DefaultMaxRatio
	slackBits    atomic.Uint64 // math.Float64bits; 0 means DefaultSlack
	tracer       atomic.Value  // tracerBox
	shardPlus1   atomic.Int64  // shard id + 1; 0 means NoShard

	mu     sync.RWMutex
	series map[seriesKey]*series
}

// NoShard is the Shard value of a registry that does not belong to a
// sharded store.
const NoShard = -1

// NewRegistry returns an empty registry with default sentinel constants and
// strict mode off.
func NewRegistry() *Registry {
	return &Registry{series: make(map[seriesKey]*series)}
}

// SetTracer installs t as the registry's trace hook (nil disables tracing).
func (r *Registry) SetTracer(t Tracer) { r.tracer.Store(tracerBox{t: t}) }

func (r *Registry) loadTracer() Tracer {
	if b, ok := r.tracer.Load().(tracerBox); ok {
		return b.t
	}
	return nil
}

// SetShard tags the registry with the shard it records for inside a
// sharded store; every SeriesSnapshot then carries the id, so merged
// multi-shard metric views stay attributable. The default is NoShard.
func (r *Registry) SetShard(id int) { r.shardPlus1.Store(int64(id) + 1) }

// Shard reports the registry's shard tag (NoShard outside sharded stores).
func (r *Registry) Shard() int { return int(r.shardPlus1.Load()) - 1 }

// SetStrict arms (or disarms) the bound sentinels: with strict mode on,
// End returns a *BoundError for any operation whose measured reads exceed
// MaxRatio·bound + Slack.
func (r *Registry) SetStrict(on bool) { r.strict.Store(on) }

// Strict reports whether the sentinels are armed.
func (r *Registry) Strict() bool { return r.strict.Load() }

// SetLimits tunes the sentinel constants; non-positive values keep the
// defaults.
func (r *Registry) SetLimits(maxRatio, slack float64) {
	if maxRatio > 0 {
		r.maxRatioBits.Store(math.Float64bits(maxRatio))
	}
	if slack > 0 {
		r.slackBits.Store(math.Float64bits(slack))
	}
}

// Limits reports the effective sentinel constants.
func (r *Registry) Limits() (maxRatio, slack float64) {
	maxRatio, slack = DefaultMaxRatio, DefaultSlack
	if b := r.maxRatioBits.Load(); b != 0 {
		maxRatio = math.Float64frombits(b)
	}
	if b := r.slackBits.Load(); b != 0 {
		slack = math.Float64frombits(b)
	}
	return maxRatio, slack
}

// Inflight reports the number of operations between Begin and End.
func (r *Registry) Inflight() int64 { return r.inflight.Load() }

// Begin opens one operation: it assigns the op's sequence number, bumps the
// inflight gauge and emits the tracer's OpStart event.
func (r *Registry) Begin(kind, name string, worker int) Op {
	op := Op{
		Kind:   kind,
		Name:   name,
		Worker: worker,
		Seq:    r.seq.Add(1),
		Start:  time.Now(),
	}
	r.inflight.Inc()
	if t := r.loadTracer(); t != nil {
		t.OpStart(op)
	}
	return op
}

// End closes an operation: the measured I/O lands in the op's series, the
// tracer's OpEnd fires, and with strict mode armed a bound breach returns a
// *BoundError carrying the event. The Event is returned either way so the
// instrumentation layer can surface exact per-op numbers (profiles).
func (r *Registry) End(op Op, m Measure) (Event, error) {
	ev := Event{
		Op:        op,
		Reads:     m.Reads,
		Writes:    m.Writes,
		CacheHits: m.CacheHits,
		Results:   m.Results,
		Duration:  time.Since(op.Start),
		Bound:     m.Bound,
	}
	if m.Bound > 0 {
		ev.Ratio = float64(m.Reads) / m.Bound
	}

	s := r.seriesFor(op.Kind, seriesKey{name: op.Name, worker: op.Worker})
	s.ops.Add(op.Seq, 1)
	s.results.Add(op.Seq, int64(m.Results))
	s.reads.Observe(m.Reads)
	s.writes.Observe(m.Writes)
	s.hits.Observe(m.CacheHits)
	if m.Bound > 0 {
		s.ratios.Observe(int64(math.Ceil(ev.Ratio * 100)))
		for {
			cur := s.maxRatioBits.Load()
			if ev.Ratio <= math.Float64frombits(cur) ||
				s.maxRatioBits.CompareAndSwap(cur, math.Float64bits(ev.Ratio)) {
				break
			}
		}
	}

	r.inflight.Dec()
	if t := r.loadTracer(); t != nil {
		t.OpEnd(ev)
	}

	if r.Strict() && m.Bound > 0 {
		maxRatio, slack := r.Limits()
		if float64(m.Reads) > maxRatio*m.Bound+slack {
			return ev, &BoundError{Event: ev, MaxRatio: maxRatio, Slack: slack}
		}
	}
	return ev, nil
}

// seriesFor returns (creating on first use) the series for key.
func (r *Registry) seriesFor(kind string, key seriesKey) *series {
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s == nil {
		s = &series{kind: kind}
		r.series[key] = s
	}
	return s
}

// Reset drops every series and zeroes the sequence counter. Inflight
// operations keep their Op tokens; their End lands in fresh series.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = make(map[seriesKey]*series)
	r.seq.Store(0)
}

// SeriesSnapshot is the point-in-time state of one (op, worker) series.
type SeriesSnapshot struct {
	Kind    string
	Name    string
	Worker  int // SerialWorker for non-batch operations
	Shard   int // the owning registry's shard tag; NoShard outside sharded stores
	Ops     int64
	Results int64
	Reads   HistSnapshot
	Writes  HistSnapshot
	Hits    HistSnapshot
	// Ratios buckets ⌈measured/bound·100⌉ per op; empty when the kind
	// declares no bound.
	Ratios   HistSnapshot
	MaxRatio float64
}

// Snapshot copies the registry's current state, series sorted by
// (name, worker) for deterministic rendering.
type Snapshot struct {
	Inflight int64
	Series   []SeriesSnapshot
}

// Snapshot returns a copy of every series plus the inflight gauge.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	keys := make([]seriesKey, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	r.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].worker < keys[j].worker
	})
	out := Snapshot{Inflight: r.Inflight()}
	shardID := r.Shard()
	for _, k := range keys {
		r.mu.RLock()
		s := r.series[k]
		r.mu.RUnlock()
		if s == nil {
			continue
		}
		out.Series = append(out.Series, SeriesSnapshot{
			Kind:     s.kind,
			Name:     k.name,
			Worker:   k.worker,
			Shard:    shardID,
			Ops:      s.ops.Total(),
			Results:  s.results.Total(),
			Reads:    s.reads.Snapshot(),
			Writes:   s.writes.Snapshot(),
			Hits:     s.hits.Snapshot(),
			Ratios:   s.ratios.Snapshot(),
			MaxRatio: math.Float64frombits(s.maxRatioBits.Load()),
		})
	}
	return out
}

// BoundError reports a strict-mode bound breach: the full trace of the
// offending operation plus the sentinel constants in force. It wraps
// ErrBoundExceeded for errors.Is.
type BoundError struct {
	Event    Event
	MaxRatio float64
	Slack    float64
}

func (e *BoundError) Error() string {
	return fmt.Sprintf(
		"%v: %s/%s op %d (worker %d): %d reads > %.2g×bound+%.2g with bound %.2f pages (ratio %.2f, %d results, %d writes, %d cache hits)",
		ErrBoundExceeded, e.Event.Kind, e.Event.Name, e.Event.Seq, e.Event.Worker,
		e.Event.Reads, e.MaxRatio, e.Slack, e.Event.Bound, e.Event.Ratio,
		e.Event.Results, e.Event.Writes, e.Event.CacheHits)
}

// Unwrap makes errors.Is(err, ErrBoundExceeded) hold.
func (e *BoundError) Unwrap() error { return ErrBoundExceeded }
