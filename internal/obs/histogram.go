package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

// The metric primitives: a lock-striped atomic counter, a gauge, and a
// log₂-bucketed histogram. All three are safe for concurrent use without
// locks (run the package tests with -race), and all three report exact
// totals: every Add/Observe lands on exactly one atomic, so concurrent
// snapshots may lag but never lose or double-count an update.

// counterStripes is the number of independent atomics a Counter spreads its
// updates over. Power of two so the stripe pick is a mask, sized to cover
// the worker counts the batch engine actually uses.
const counterStripes = 8

// stripe is one cacheline-padded counter lane. The padding keeps two lanes
// from sharing a cache line, which is the entire point of striping: updates
// with different hints do not bounce the same line between cores.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a lock-striped atomic counter. Callers pass a cheap affinity
// hint (an op sequence number, a worker index) and updates with different
// hints land on different stripes; Total folds the stripes into the exact
// sum. The zero value is ready.
type Counter struct {
	lanes [counterStripes]stripe
}

// Add adds delta to the stripe selected by hint.
func (c *Counter) Add(hint uint64, delta int64) {
	c.lanes[hint&(counterStripes-1)].v.Add(delta)
}

// Total returns the exact sum over all stripes.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.lanes {
		t += c.lanes[i].v.Load()
	}
	return t
}

// Reset zeroes every stripe.
func (c *Counter) Reset() {
	for i := range c.lanes {
		c.lanes[i].v.Store(0)
	}
}

// Gauge is a settable level (inflight operations, resident frames). The
// zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the gauge's level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the bucket count of a Histogram: bucket 0 holds
// non-positive values, bucket i (1 ≤ i < histBuckets-1) holds
// [2^(i-1), 2^i), and the last bucket absorbs everything larger. 34 buckets
// cover per-op page counts up to 2^32, far beyond any real operation.
const histBuckets = 34

// Histogram is a log₂-bucketed distribution of non-negative int64 samples.
// Buckets, sum, min and max are all atomics, so Observe never blocks and
// concurrent observations are each counted exactly once. The zero value is
// ready.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0; guarded by initMin
	max     atomic.Int64
	hasMin  atomic.Bool
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 1 + floor(log2 v)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	// Min/max via CAS loops: lock-free, and each loop terminates because the
	// tracked extreme only moves toward the sample.
	if !h.hasMin.Load() {
		h.hasMin.CompareAndSwap(false, true)
		h.min.CompareAndSwap(0, v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	h.hasMin.Store(false)
}

// Bucket is one non-empty histogram bucket covering the inclusive value
// range [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// HistSnapshot is a point-in-time copy of a Histogram. Concurrent Observe
// calls may make Count lag the bucket sum by in-flight updates; quiescent
// snapshots are exact.
type HistSnapshot struct {
	Count, Sum, Min, Max int64
	Buckets              []Bucket
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	switch {
	case i == 0:
		return 0, 0
	case i == histBuckets-1:
		return 1 << (i - 1), math.MaxInt64
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// String renders the snapshot compactly for logs and the pcindex stats
// subcommand: totals then every non-empty bucket as "[lo,hi]:count".
func (s HistSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d min=%d max=%d", s.Sum, s.Min, s.Max)
	for _, bk := range s.Buckets {
		if bk.Hi == math.MaxInt64 {
			fmt.Fprintf(&b, " [%d,+inf):%d", bk.Lo, bk.Count)
			continue
		}
		fmt.Fprintf(&b, " [%d,%d]:%d", bk.Lo, bk.Hi, bk.Count)
	}
	return b.String()
}
