package obs

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

// The package promise is exact totals under concurrency: every Add and
// Observe lands on exactly one atomic, so after the goroutines join the
// folded totals equal the arithmetic sum of what was recorded. Run these
// with -race; they are the tentpole's concurrency proof for the metric
// primitives.

const (
	hammerGoroutines = 16
	hammerOps        = 5_000
)

func hammer(f func(g, i int)) {
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < hammerOps; i++ {
				f(g, i)
			}
		}(g)
	}
	wg.Wait()
}

func TestCounterExactUnderConcurrency(t *testing.T) {
	var c Counter
	hammer(func(g, i int) { c.Add(uint64(g), 2) })
	if want := int64(2 * hammerGoroutines * hammerOps); c.Total() != want {
		t.Fatalf("Total() = %d, want %d", c.Total(), want)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("Total() after Reset = %d", c.Total())
	}
}

// Stripe selection must not change the sum: adds with every hint value
// fold into one exact total.
func TestCounterStripesFold(t *testing.T) {
	var c Counter
	for hint := uint64(0); hint < 64; hint++ {
		c.Add(hint, int64(hint))
	}
	if want := int64(64 * 63 / 2); c.Total() != want {
		t.Fatalf("Total() = %d, want %d", c.Total(), want)
	}
}

func TestGaugeExactUnderConcurrency(t *testing.T) {
	var g Gauge
	hammer(func(_, i int) {
		g.Inc()
		if i%2 == 1 {
			g.Dec()
			g.Dec()
		}
	})
	// Per goroutine: hammerOps incs, 2*(hammerOps/2) decs — net zero.
	if g.Load() != 0 {
		t.Fatalf("Load() = %d, want 0", g.Load())
	}
	g.Set(7)
	if g.Load() != 7 {
		t.Fatalf("Load() after Set = %d, want 7", g.Load())
	}
}

func TestHistogramExactUnderConcurrency(t *testing.T) {
	var h Histogram
	hammer(func(g, i int) { h.Observe(int64(i % 100)) })
	s := h.Snapshot()
	if want := int64(hammerGoroutines * hammerOps); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
	// Each goroutine observes 0..99 fifty times: sum = 50 * 4950 per goroutine.
	if want := int64(hammerGoroutines * (hammerOps / 100) * (99 * 100 / 2)); s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 0 || s.Max != 99 {
		t.Fatalf("Min/Max = %d/%d, want 0/99", s.Min, s.Max)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("buckets sum to %d, Count is %d", bucketSum, s.Count)
	}
}

// The log₂ bucket layout is part of the public contract (pcbench reports
// and pcindex stats print it): bucket 0 holds non-positive samples, bucket
// i holds [2^(i-1), 2^i), and the last bucket absorbs the rest.
func TestHistogramBucketLayout(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 8, math.MaxInt64} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 4, Hi: 7, Count: 1},
		{Lo: 8, Hi: 15, Count: 1},
		{Lo: 1 << 32, Hi: math.MaxInt64, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d non-empty buckets %v, want %d", len(s.Buckets), s.Buckets, len(want))
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if s.Min != 0 || s.Max != math.MaxInt64 {
		t.Fatalf("Min/Max = %d/%d", s.Min, s.Max)
	}
	if got := s.String(); !strings.Contains(got, "[2,3]:2") || !strings.Contains(got, "+inf") {
		t.Fatalf("String() = %q misses bucket rendering", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("Snapshot after Reset = %+v", s)
	}
	h.Observe(9)
	if s := h.Snapshot(); s.Min != 9 || s.Max != 9 {
		t.Fatalf("Min/Max after Reset+Observe = %d/%d, want 9/9", s.Min, s.Max)
	}
}

// The bound functions are the executable statements of the theorems; pin
// their arithmetic so a refactor cannot silently weaken the sentinels.
func TestBoundFuncs(t *testing.T) {
	// ceilLog counts search levels: 1 for n <= 1, plus one per power of the
	// base below n.
	cases := []struct {
		n, b, t int
		want    float64
	}{
		{1, 10, 0, 1},
		{10, 10, 0, 2},
		{1000, 10, 0, 4},
		{1000, 10, 20, 6}, // 4 levels + 20/10 output pages
	}
	for _, c := range cases {
		if got := LogBBound(c.n, c.b, c.t); got != c.want {
			t.Fatalf("LogBBound(%d,%d,%d) = %v, want %v", c.n, c.b, c.t, got, c.want)
		}
	}
	// 1000 records at 10 per leaf is 100 leaves; a binary range tree over
	// them has 8 levels by the same counting.
	if got := RangeTreeBound(1000, 10, 0); got != 8 {
		t.Fatalf("RangeTreeBound(1000,10,0) = %v, want 8", got)
	}
	if got := RangeTreeBound(1000, 10, 30); got != 11 {
		t.Fatalf("RangeTreeBound(1000,10,30) = %v, want 11", got)
	}
}

// Sixteen workers record disjoint op streams concurrently; the snapshot
// must show exact per-series and aggregate totals, and the inflight gauge
// must return to zero.
func TestRegistryConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < hammerGoroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1_000; i++ {
				op := r.Begin("twosided", "query", w)
				if _, err := r.End(op, Measure{Reads: 3, Writes: 1, CacheHits: 2, Results: 5, Bound: 6}); err != nil {
					t.Errorf("worker %d: End: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if snap.Inflight != 0 {
		t.Fatalf("Inflight = %d after all ops ended", snap.Inflight)
	}
	if len(snap.Series) != hammerGoroutines {
		t.Fatalf("got %d series, want %d (one per worker)", len(snap.Series), hammerGoroutines)
	}
	var totalOps, totalReads, totalHits, totalResults int64
	for i, s := range snap.Series {
		if s.Kind != "twosided" || s.Name != "query" || s.Worker != i {
			t.Fatalf("series %d identity = %s/%s worker=%d", i, s.Kind, s.Name, s.Worker)
		}
		if s.Ops != 1_000 || s.Reads.Count != 1_000 || s.Ratios.Count != 1_000 {
			t.Fatalf("series %d: ops=%d reads.count=%d ratios.count=%d, want 1000 each",
				i, s.Ops, s.Reads.Count, s.Ratios.Count)
		}
		if s.MaxRatio != 0.5 {
			t.Fatalf("series %d: MaxRatio = %v, want 0.5", i, s.MaxRatio)
		}
		totalOps += s.Ops
		totalReads += s.Reads.Sum
		totalHits += s.Hits.Sum
		totalResults += s.Results
	}
	const ops = hammerGoroutines * 1_000
	if totalOps != ops || totalReads != 3*ops || totalHits != 2*ops || totalResults != 5*ops {
		t.Fatalf("totals ops=%d reads=%d hits=%d results=%d, want %d/%d/%d/%d",
			totalOps, totalReads, totalHits, totalResults, ops, int64(3*ops), int64(2*ops), int64(5*ops))
	}

	r.Reset()
	if s := r.Snapshot(); len(s.Series) != 0 {
		t.Fatalf("Snapshot after Reset holds %d series", len(s.Series))
	}
}

// A strict-mode breach must return a *BoundError wrapping ErrBoundExceeded
// and carrying the exact event; within limits End stays silent.
func TestRegistryStrictBreach(t *testing.T) {
	r := NewRegistry()
	r.SetStrict(true)
	r.SetLimits(2, 1)
	if maxRatio, slack := r.Limits(); maxRatio != 2 || slack != 1 {
		t.Fatalf("Limits() = %v, %v", maxRatio, slack)
	}

	// 2×4+1 = 9 allowed reads: 9 passes, 10 breaches.
	op := r.Begin("twosided", "query", SerialWorker)
	if _, err := r.End(op, Measure{Reads: 9, Bound: 4}); err != nil {
		t.Fatalf("reads at the limit: unexpected error %v", err)
	}
	op = r.Begin("twosided", "query", SerialWorker)
	_, err := r.End(op, Measure{Reads: 10, Results: 3, Bound: 4})
	if !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("breach error = %v, want ErrBoundExceeded", err)
	}
	var be *BoundError
	if !errors.As(err, &be) {
		t.Fatalf("breach error %T does not unpack to *BoundError", err)
	}
	if be.Event.Kind != "twosided" || be.Event.Name != "query" || be.Event.Reads != 10 ||
		be.Event.Results != 3 || be.Event.Seq == 0 || be.Event.Ratio != 2.5 {
		t.Fatalf("BoundError trace incomplete: %+v", be.Event)
	}
	if !strings.Contains(err.Error(), "twosided/query") || !strings.Contains(err.Error(), "10 reads") {
		t.Fatalf("BoundError text %q misses the trace", err)
	}

	// Bound-less ops (builds) never trip the sentinel.
	op = r.Begin("twosided", "build", SerialWorker)
	if _, err := r.End(op, Measure{Reads: 1 << 20}); err != nil {
		t.Fatalf("bound-less op tripped the sentinel: %v", err)
	}

	// Strict off: the same breach is recorded but not reported.
	r.SetStrict(false)
	op = r.Begin("twosided", "query", SerialWorker)
	if _, err := r.End(op, Measure{Reads: 10, Bound: 4}); err != nil {
		t.Fatalf("disarmed sentinel still fired: %v", err)
	}
}

// traceRecorder is a minimal concurrent-safe Tracer.
type traceRecorder struct {
	mu     sync.Mutex
	starts []Op
	ends   []Event
}

func (tr *traceRecorder) OpStart(op Op) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.starts = append(tr.starts, op)
}

func (tr *traceRecorder) OpEnd(ev Event) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.ends = append(tr.ends, ev)
}

func TestRegistryTracer(t *testing.T) {
	r := NewRegistry()
	tr := &traceRecorder{}
	r.SetTracer(tr)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				op := r.Begin("segment", "stab", w)
				r.End(op, Measure{Reads: 1, Bound: 2})
			}
		}(w)
	}
	wg.Wait()
	if len(tr.starts) != 200 || len(tr.ends) != 200 {
		t.Fatalf("tracer saw %d starts / %d ends, want 200 each", len(tr.starts), len(tr.ends))
	}
	seq := make(map[uint64]bool)
	for _, ev := range tr.ends {
		if ev.Kind != "segment" || ev.Name != "stab" || ev.Ratio != 0.5 {
			t.Fatalf("traced event %+v", ev)
		}
		if seq[ev.Seq] {
			t.Fatalf("sequence %d delivered twice", ev.Seq)
		}
		seq[ev.Seq] = true
	}
	// nil disables tracing without breaking recording.
	r.SetTracer(nil)
	op := r.Begin("segment", "stab", SerialWorker)
	r.End(op, Measure{Reads: 1})
	if len(tr.ends) != 200 {
		t.Fatal("disabled tracer kept receiving events")
	}
}
