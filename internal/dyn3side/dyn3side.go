// Package dyn3side provides the dynamic 3-sided functionality of
// Theorem 5.2 as a buffered-rebuild structure: a static ext3side tree plus
// a bounded update buffer, rebuilt from a disk-resident point log whenever
// the buffer fills.
//
// The abstract defers Theorem 5.2's construction entirely ("similar ideas
// can be used..."), so this package implements the simplest scheme whose
// measured costs fit the theorem's generous budget (DESIGN.md §4):
//
//   - Queries run the optimal static query plus one scan of the update
//     buffer, whose capacity is B·ceil(log_B n) operations — at most
//     O(log_B n) extra pages, preserving O(log_B n + t/B).
//   - Updates append to the buffer (O(1) page rewrites). A full buffer
//     triggers a rebuild from the point log: O((n/B)·log B) I/Os amortized
//     over B·log_B n updates ≈ O(n·log B / (B²·log_B n)) per update, which
//     stays below Theorem 5.2's O(log_B n·log² B) bound for n up to
//     ~B²·log_B n·log² B (≈10⁹ at B=170, ≈10⁷ at B=20).
package dyn3side

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/ext3side"
	"pathcache/internal/record"
)

// op is one buffered update: kind(1) + pad(7) + point(24).
type op struct {
	insert bool
	p      record.Point
}

const opSize = 32

// Tree is a dynamic 3-sided index. Not safe for concurrent use.
type Tree struct {
	pager disk.Pager
	b     int
	n     int // live points

	main     *ext3side.Tree // nil while empty
	logHead  disk.PageID    // point log backing the main structure
	logCount int

	buf     []op // mirror of the buffer chain
	bufHead disk.PageID
}

// New creates an empty dynamic 3-sided index on p.
func New(p disk.Pager) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("dyn3side: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	return &Tree{pager: p, b: b, logHead: disk.InvalidPage, bufHead: disk.InvalidPage}, nil
}

// Len reports the number of live points.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// bufCap is the buffer capacity in operations: B·ceil(log_B max(n, B)),
// keeping the per-query buffer scan within the optimal search term.
func (t *Tree) bufCap() int {
	lb := 1
	for v := 1; v < t.n || v < t.b; v *= t.b {
		lb++
	}
	return t.b * lb
}

// BulkLoad replaces the tree's entire contents with pts — one build instead
// of n buffered updates. Pending buffered operations are discarded.
func (t *Tree) BulkLoad(pts []record.Point) error {
	t.buf = nil
	if err := t.rewriteBuf(); err != nil {
		return err
	}
	if t.logHead != disk.InvalidPage {
		if err := disk.FreeChain(t.pager, t.logHead); err != nil {
			return err
		}
		t.logHead, t.logCount = disk.InvalidPage, 0
	}
	if t.main != nil {
		if err := t.main.Destroy(); err != nil {
			return err
		}
		t.main = nil
	}
	head, _, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(pts))
	if err != nil {
		return err
	}
	t.logHead, t.logCount = head, len(pts)
	if len(pts) > 0 {
		main, err := ext3side.Build(t.pager, pts)
		if err != nil {
			return err
		}
		t.main = main
	}
	t.n = len(pts)
	return nil
}

// Insert adds a point.
func (t *Tree) Insert(p record.Point) error {
	if err := t.log(op{insert: true, p: p}); err != nil {
		return err
	}
	t.n++
	return nil
}

// Delete removes a point previously inserted with the same (X, Y, ID).
func (t *Tree) Delete(p record.Point) error {
	if err := t.log(op{insert: false, p: p}); err != nil {
		return err
	}
	t.n--
	return nil
}

// log appends an operation to the buffer, rebuilding on overflow.
func (t *Tree) log(o op) error {
	t.buf = append(t.buf, o)
	if err := t.rewriteBuf(); err != nil {
		return err
	}
	if len(t.buf) >= t.bufCap() {
		return t.rebuild()
	}
	return nil
}

// rewriteBuf re-persists the buffer mirror.
func (t *Tree) rewriteBuf() error {
	if t.bufHead != disk.InvalidPage {
		if err := disk.FreeChain(t.pager, t.bufHead); err != nil {
			return err
		}
		t.bufHead = disk.InvalidPage
	}
	if len(t.buf) == 0 {
		return nil
	}
	raw := make([]byte, len(t.buf)*opSize)
	for i, o := range t.buf {
		if o.insert {
			raw[i*opSize] = 1
		}
		o.p.Encode(raw[i*opSize+8:])
	}
	head, _, err := disk.WriteChain(t.pager, opSize, raw)
	if err != nil {
		return err
	}
	t.bufHead = head
	return nil
}

// rebuild folds the buffer into the point log and rebuilds the static tree.
func (t *Tree) rebuild() error {
	// Read the current point log (charged).
	var pts []record.Point
	if t.logHead != disk.InvalidPage {
		if _, err := disk.ScanChain(t.pager, record.PointSize, t.logHead, func(rec []byte) bool {
			pts = append(pts, record.DecodePoint(rec))
			return true
		}); err != nil {
			return err
		}
	}
	// Apply buffered operations in order.
	present := make(map[record.Point]int, len(pts)+len(t.buf))
	for _, p := range pts {
		present[p]++
	}
	for _, o := range t.buf {
		if o.insert {
			present[o.p]++
		} else if present[o.p] > 0 {
			present[o.p]--
		}
	}
	merged := make([]record.Point, 0, len(present))
	for p, c := range present {
		for i := 0; i < c; i++ {
			merged = append(merged, p)
		}
	}
	// Replace log, tree and buffer.
	if t.logHead != disk.InvalidPage {
		if err := disk.FreeChain(t.pager, t.logHead); err != nil {
			return err
		}
		t.logHead = disk.InvalidPage
	}
	if t.main != nil {
		if err := t.main.Destroy(); err != nil {
			return err
		}
		t.main = nil
	}
	head, _, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(merged))
	if err != nil {
		return err
	}
	t.logHead, t.logCount = head, len(merged)
	if len(merged) > 0 {
		main, err := ext3side.Build(t.pager, merged)
		if err != nil {
			return err
		}
		t.main = main
	}
	t.buf = nil
	return t.rewriteBuf()
}

// Query reports every live point with a1 <= x <= a2 and y >= b, merging the
// static answer with the buffered operations (newest wins per point).
func (t *Tree) Query(a1, a2, b int64) ([]record.Point, ext3side.QueryStats, error) {
	var st ext3side.QueryStats
	var listed []record.Point
	if t.main != nil {
		var err error
		listed, st, err = t.main.Query(a1, a2, b)
		if err != nil {
			return nil, st, err
		}
	}
	if len(t.buf) == 0 {
		st.Results = len(listed)
		return listed, st, nil
	}
	// Charge the buffer chain read; the mirror is authoritative.
	if t.bufHead != disk.InvalidPage {
		if _, err := disk.ScanChain(t.pager, opSize, t.bufHead, func([]byte) bool { return true }); err != nil {
			return nil, st, err
		}
	}
	final := make(map[record.Point]bool, len(t.buf))
	for _, o := range t.buf {
		final[o.p] = o.insert
	}
	out := listed[:0]
	for _, p := range listed {
		if _, ok := final[p]; !ok {
			out = append(out, p)
		}
	}
	for p, ins := range final {
		if ins && p.X >= a1 && p.X <= a2 && p.Y >= b {
			out = append(out, p)
		}
	}
	st.Results = len(out)
	return out, st, nil
}

// TotalPages reports the storage footprint when the pager is a *Store.
func (t *Tree) TotalPages() int {
	if s, ok := t.pager.(*disk.Store); ok {
		return s.NumPages()
	}
	return -1
}
