package dyn3side

import (
	"math/rand"
	"sort"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := tr.Query(0, 100, 0)
	if err != nil || out != nil || st.Results != 0 {
		t.Fatalf("query on empty: %v %v %v", out, st, err)
	}
}

func TestMixedWorkloadMatchesOracle(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(901))
	live := map[record.Point]bool{}
	nextID := uint64(1)
	for step := 0; step < 4000; step++ {
		r := rng.Float64()
		switch {
		case r < 0.55 || len(live) == 0:
			p := record.Point{X: rng.Int63n(50_000), Y: rng.Int63n(50_000), ID: nextID}
			nextID++
			if err := tr.Insert(p); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			live[p] = true
		case r < 0.8:
			var victim record.Point
			k := rng.Intn(len(live))
			for p := range live {
				if k == 0 {
					victim = p
					break
				}
				k--
			}
			if err := tr.Delete(victim); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(live, victim)
		default:
			a1 := rng.Int63n(50_000)
			a2 := a1 + rng.Int63n(50_000-a1+1)
			b := rng.Int63n(55_000) - 2_000
			got, _, err := tr.Query(a1, a2, b)
			if err != nil {
				t.Fatalf("step %d query: %v", step, err)
			}
			ls := make([]record.Point, 0, len(live))
			for p := range live {
				ls = append(ls, p)
			}
			want := inmem.ThreeSided(ls, a1, a2, b)
			if !samePoints(got, want) {
				t.Fatalf("step %d query (%d,%d,%d): got %d want %d (n=%d)",
					step, a1, a2, b, len(got), len(want), len(live))
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len=%d oracle=%d", tr.Len(), len(live))
	}
}

func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}

// Queries stay optimal-shaped: static cost plus at most the buffer pages.
func TestQueryIOCost(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	pts := workload.UniformPoints(n, 1_000_000, 903)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	lb := logB(n, tr.B())
	for _, q := range workload.ThreeSidedQueries(25, 1_000_000, 0.1, 0.005, 905) {
		s.ResetStats()
		got, _, err := tr.Query(q.A1, q.A2, q.B)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(s.Stats().Reads)
		// Static 3-sided bound plus the buffer chain (<= ~2 lb pages).
		bound := 14*lb + 4*logB(tr.B(), 2) + 4*len(got)/tr.B() + 2*lb + 14
		if reads > bound {
			t.Fatalf("query (%d,%d,%d): %d reads for t=%d (bound %d)",
				q.A1, q.A2, q.B, reads, len(got), bound)
		}
	}
}

// Amortized update cost stays within Theorem 5.2's budget.
func TestAmortizedUpdateCost(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	pts := workload.UniformPoints(n, 1_000_000, 907)
	s.ResetStats()
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	perOp := float64(s.Stats().Total()) / float64(n)
	b := tr.B()
	lb := float64(logB(n, b))
	l2b := float64(logB(b, 2))
	budget := lb * l2b * l2b // Theorem 5.2's O(log_B n · log^2 B)
	if perOp > budget {
		t.Fatalf("amortized insert %.1f I/Os exceeds Theorem 5.2 budget %.1f", perOp, budget)
	}
}

func TestDeleteEverythingReclaimsSpace(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.UniformPoints(3_000, 100_000, 909)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	peak := s.NumPages()
	for _, p := range pts {
		if err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.Query(-1<<40, 1<<40, -1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("query after deleting all: %d points", len(got))
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if s.NumPages() > peak/4 {
		t.Fatalf("space not reclaimed: %d of peak %d pages", s.NumPages(), peak)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	p := record.Point{X: 10, Y: 20, ID: 7}
	for cycle := 0; cycle < 5; cycle++ {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		got, _, err := tr.Query(0, 100, 0)
		if err != nil || len(got) != 1 {
			t.Fatalf("cycle %d after insert: %v %v", cycle, got, err)
		}
		if err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
		got, _, err = tr.Query(0, 100, 0)
		if err != nil || len(got) != 0 {
			t.Fatalf("cycle %d after delete: %v %v", cycle, got, err)
		}
	}
}
