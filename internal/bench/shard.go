package bench

// The horizontal scale-out family: the same 2-sided battery against one
// single store and against a range-partitioned sharded store of the same
// records, over uniform and Zipf-skewed key distributions. The comparison
// is the point — a scatter-gathered query pays one search term per shard
// its predicate reaches, and quantile splitting must keep that predicate
// pruning effective even when the keys are heavily skewed.

import (
	"fmt"
	"os"
	"path/filepath"

	"pathcache"
	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// shardReportShards is the shard count of the sharded side. Quantile
// splitting can merge shards under extreme skew; the report records the
// count the build actually produced.
const shardReportShards = 4

func toPublicPoints(pts []record.Point) []pathcache.Point {
	out := make([]pathcache.Point, len(pts))
	for i, p := range pts {
		out[i] = pathcache.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return out
}

func shardReport(cfg Config) (Report, error) {
	rep := Report{Name: "shard", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	dir, err := os.MkdirTemp("", "pcbench-shard-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)
	opts := &pathcache.Options{PageSize: cfg.pageSize()}
	for _, n := range cfg.jsonPointNs() {
		for _, w := range []struct {
			name string
			pts  []record.Point
		}{
			{"uniform", workload.UniformPoints(n, 1<<30, cfg.seed())},
			// s = 1.2 concentrates the key mass hard at the low end — the
			// regime where naive equal-width splits would leave most shards
			// empty and quantile splits must keep them balanced.
			{"zipf", workload.ZipfPoints(n, 1<<30, 1.2, cfg.seed())},
		} {
			pts := toPublicPoints(w.pts)
			qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, 0.01, cfg.seed()+1)

			// Baseline: one store holding every record.
			single, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented, opts)
			if err != nil {
				return rep, fmt.Errorf("shard/%s single n=%d: %w", w.name, n, err)
			}
			search := float64(logB(n, b))
			var samp querySampler
			for _, q := range qs {
				out, prof, err := single.QueryProfile(q.A, q.B)
				if err != nil {
					single.Close()
					return rep, fmt.Errorf("shard/%s single query n=%d: %w", w.name, n, err)
				}
				samp.observe(prof.Reads, len(out), search+float64(len(out))/float64(b))
			}
			m := samp.measurement("shard/single/"+w.name, n, b, single.Pages(), search)
			if err := single.Close(); err != nil {
				return rep, fmt.Errorf("shard/%s single close n=%d: %w", w.name, n, err)
			}
			rep.Measurements = append(rep.Measurements, m)

			// The sharded side: same records, quantile-split across shards,
			// each shard its own engine. A query's bound is one per-shard
			// search term for every shard its key suffix reaches.
			store := filepath.Join(dir, fmt.Sprintf("%s-%d", w.name, n))
			s, err := pathcache.BuildShardedPoints(store, "twosided", pts,
				pathcache.ShardPlan{Shards: shardReportShards, Scheme: pathcache.SchemeSegmented}, opts)
			if err != nil {
				return rep, fmt.Errorf("shard/%s sharded n=%d: %w", w.name, n, err)
			}
			nshards := s.NumShards()
			perShard := float64(logB((n+nshards-1)/nshards, b))
			var ssamp querySampler
			var searchSum float64
			for _, q := range qs {
				out, profs, err := s.QueryProfile(q.A, q.B)
				if err != nil {
					s.Close()
					return rep, fmt.Errorf("shard/%s sharded query n=%d: %w", w.name, n, err)
				}
				var reads int64
				for _, p := range profs {
					reads += p.Reads
				}
				qsearch := float64(len(profs)) * perShard
				searchSum += qsearch
				ssamp.observe(reads, len(out), qsearch+float64(len(out))/float64(b))
			}
			sm := ssamp.measurement(
				fmt.Sprintf("shard/sharded-%d/%s", nshards, w.name),
				n, b, s.Pages(), searchSum/float64(len(qs)))
			if err := s.Close(); err != nil {
				return rep, fmt.Errorf("shard/%s sharded close n=%d: %w", w.name, n, err)
			}
			rep.Measurements = append(rep.Measurements, sm)
		}
	}
	return rep, nil
}
