package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"pathcache/internal/btree"
	"pathcache/internal/disk"
	"pathcache/internal/pstcore"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
	"pathcache/internal/workload"
)

// NewBTreeOnX indexes the points' x-coordinates in a B+-tree (value = ID).
func NewBTreeOnX(s *disk.Store, pts []record.Point) (*btree.Tree, error) {
	bt, err := btree.New(s)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if err := bt.Insert(p.X, p.ID); err != nil {
			return nil, err
		}
	}
	return bt, nil
}

// RunF2 reproduces Figure 2: the skeletal B-tree maps height-log B subtrees
// to pages, so a root-to-leaf descent reads O(log_B n) pages while the
// binary path has O(log n) nodes.
func RunF2(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "F2: skeletal B-tree descent — pages read vs binary path length (Figure 2)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tbinary height\tsubtree/page\tavg descent reads\tpredict ceil(h/subH)")
	for _, n := range cfg.pointNs() {
		s := disk.MustStore(cfg.pageSize())
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i) * 3
		}
		root := buildBalanced(keys, nil)
		tr, err := skeletal.Build(s, root, 8)
		if err != nil {
			return err
		}
		probes := workload.StabQueries(cfg.queries(), int64(n)*3, cfg.seed())
		var reads int64
		for _, k := range probes {
			s.ResetStats()
			_, err := tr.Descend(func(nd skeletal.Node) skeletal.Dir {
				if nd.Key == k {
					return skeletal.Stop
				}
				if k < nd.Key {
					return skeletal.Left
				}
				return skeletal.Right
			})
			if err != nil {
				return err
			}
			reads += s.Stats().Reads
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%d\n",
			n, tr.Height(), tr.SubHeight(), float64(reads)/float64(len(probes)),
			tr.Height()/tr.SubHeight()+1)
	}
	return tw.Flush()
}

func buildBalanced(keys []int64, payload []byte) *skeletal.BuildNode {
	if len(keys) == 0 {
		return nil
	}
	mid := len(keys) / 2
	return &skeletal.BuildNode{
		Key:     keys[mid],
		Payload: make([]byte, 8),
		Left:    buildBalanced(keys[:mid], payload),
		Right:   buildBalanced(keys[mid+1:], payload),
	}
}

// RunF4 reproduces Figure 4: the hierarchical plane decomposition of the
// external PST with B=4 and the classification of the blocks a 2-sided
// query touches — corner, ancestors, right siblings, and descendants that
// pay for themselves.
func RunF4(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "F4: block classification for 2-sided queries on the B=4 decomposition (Figure 4)\n\n")
	const b = 4
	n := 64
	pts := workload.UniformPoints(n, 100, cfg.seed())
	root := pstcore.Build(pstcore.SortedAsc(pts), b)

	tw := newTab(w)
	fmt.Fprintln(tw, "query (a,b)\tt\tcorner depth\tancestors\tsiblings\tdescendants inside\tdescendants cut")
	for _, q := range []struct{ a, b int64 }{{10, 10}, {30, 40}, {50, 20}, {70, 70}, {90, 5}} {
		var anc, sib, descIn, descCut, t int
		cornerDepth := -1

		// Corner path.
		node := root
		depth := 0
		var path []*pstcore.MemNode
		for node != nil {
			path = append(path, node)
			for _, p := range node.Pts {
				if p.X >= q.a && p.Y >= q.b {
					t++
				}
			}
			if node.MinY < q.b {
				break
			}
			if q.a <= node.Split {
				node = node.Left
			} else {
				node = node.Right
			}
			depth++
		}
		cornerDepth = len(path) - 1
		anc = cornerDepth

		var explore func(m *pstcore.MemNode)
		explore = func(m *pstcore.MemNode) {
			if m == nil {
				return
			}
			inside := m.MinY >= q.b
			if inside {
				descIn++
			} else {
				descCut++
			}
			for _, p := range m.Pts {
				if p.X >= q.a && p.Y >= q.b {
					t++
				}
			}
			if inside {
				explore(m.Left)
				explore(m.Right)
			}
		}
		for i := 0; i+1 < len(path); i++ {
			if path[i+1] == path[i].Left && path[i].Right != nil {
				sib++
				// Sibling block itself, then its subtree.
				for _, p := range path[i].Right.Pts {
					if p.X >= q.a && p.Y >= q.b {
						t++
					}
				}
				if path[i].Right.MinY >= q.b {
					explore(path[i].Right.Left)
					explore(path[i].Right.Right)
				}
			}
		}
		fmt.Fprintf(tw, "(%d,%d)\t%d\t%d\t%d\t%d\t%d\t%d\n",
			q.a, q.b, t, cornerDepth, anc, sib, descIn, descCut)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nDecomposition (region x-ranges and y-cutoffs, B=%d, n=%d):\n", b, n)
	renderDecomposition(w, root, 0, math.MinInt64, math.MaxInt64)
	return nil
}

// renderDecomposition prints the region tree as indented x-range / y-range
// lines, the textual form of Figure 4's drawing.
func renderDecomposition(w io.Writer, m *pstcore.MemNode, depth int, xlo, xhi int64) {
	if m == nil || depth > 3 {
		return
	}
	xs := make([]int64, 0, len(m.Pts))
	ys := make([]int64, 0, len(m.Pts))
	for _, p := range m.Pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "region depth=%d x-split=%d points y in [%d..%d]\n", depth, m.Split, ys[0], ys[len(ys)-1])
	renderDecomposition(w, m.Left, depth+1, xlo, m.Split)
	renderDecomposition(w, m.Right, depth+1, m.Split, xhi)
}

// Runner describes one experiment for the CLI.
type Runner struct {
	Name string
	Desc string
	Run  func(io.Writer, Config) error
}

// Runners lists every experiment in EXPERIMENTS.md order.
func Runners() []Runner {
	return []Runner{
		{"e1", "2-sided query I/Os: cached schemes vs IKO", RunE1},
		{"e2", "storage ladder across schemes and page sizes", RunE2},
		{"e3", "recursive schemes keep optimal queries", RunE3},
		{"e4", "dynamic structure: amortized updates and queries", RunE4},
		{"e5", "segment tree: naive vs path-cached (also F3)", RunE5},
		{"e6", "interval tree vs segment tree", RunE6},
		{"e7", "3-sided queries", RunE7},
		{"e8", "B+-tree baseline on 2-D queries", RunE8},
		{"e9", "dynamic 3-sided structure (Theorem 5.2)", RunE9},
		{"e10", "extension: 4-sided window range tree", RunE10},
		{"f2", "skeletal B-tree descent cost", RunF2},
		{"f4", "Figure 4 block classification and decomposition", RunF4},
		{"p1", "parallel batch throughput through the sharded pool", RunPar},
		{"a1", "ablation: cache chunk length (Theorem 3.2's log B)", RunA1},
		{"a2", "ablation: buffer pool size vs cold bounds", RunA2},
		{"a3", "ablation: workload shape vs query constants", RunA3},
	}
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, cfg Config) error {
	for i, r := range Runners() {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := r.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
	}
	return nil
}
