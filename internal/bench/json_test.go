package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteJSON runs the compact machine-readable suite at small scale and
// checks each emitted BENCH_*.json parses back into a Report whose
// measurements carry coherent I/O accounting: positive reads, bounds, and
// ratios, and a ratio that stays within a loose constant of the predicted
// bound (the theorems say O(1); the harness allows generous slack so the
// test tracks accounting sanity, not constants).
func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PageSize: 1024, Seed: 1, Small: true}
	paths, err := WriteJSON(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := map[string]bool{
		"BENCH_twosided.json":  true,
		"BENCH_threeside.json": true,
		"BENCH_stabbing.json":  true,
		"BENCH_window.json":    true,
	}
	if len(paths) != len(wantNames) {
		t.Fatalf("wrote %d reports, want %d: %v", len(paths), len(wantNames), paths)
	}
	for _, p := range paths {
		if !wantNames[filepath.Base(p)] {
			t.Fatalf("unexpected report file %s", p)
		}
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(blob, &rep); err != nil {
			t.Fatalf("%s does not parse: %v", p, err)
		}
		if rep.PageSize != 1024 || rep.Seed != 1 || !rep.Small {
			t.Fatalf("%s: config echo mismatch: %+v", p, rep)
		}
		if len(rep.Measurements) == 0 {
			t.Fatalf("%s holds no measurements", p)
		}
		for _, m := range rep.Measurements {
			if m.Structure == "" || m.N <= 0 || m.B <= 0 || m.Queries <= 0 {
				t.Fatalf("%s: malformed measurement %+v", p, m)
			}
			if m.AvgReads <= 0 || m.Bound <= 0 || m.Ratio <= 0 {
				t.Fatalf("%s: %s n=%d: non-positive accounting %+v", p, m.Structure, m.N, m)
			}
			// Loose sanity: measured I/O within 50x of the predicted bound
			// (IKO's log2 n vs log_B n gap fits comfortably; a broken
			// counter or bound would be orders off).
			if m.Ratio > 50 {
				t.Fatalf("%s: %s n=%d: ratio %.1f implausibly far from bound", p, m.Structure, m.N, m.Ratio)
			}
		}
	}
}
