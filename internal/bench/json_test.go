package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteJSON runs the compact machine-readable suite at small scale and
// checks each emitted BENCH_*.json parses back into a Report whose
// measurements carry coherent I/O accounting: positive reads, bounds, and
// ratios, and a ratio that stays within a loose constant of the predicted
// bound (the theorems say O(1); the harness allows generous slack so the
// test tracks accounting sanity, not constants).
func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PageSize: 1024, Seed: 1, Small: true}
	paths, err := WriteJSON(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := map[string]bool{
		"BENCH_twosided.json":  true,
		"BENCH_threeside.json": true,
		"BENCH_segment.json":   true,
		"BENCH_interval.json":  true,
		"BENCH_stabbing.json":  true,
		"BENCH_window.json":    true,
		"BENCH_lsm.json":       true,
		"BENCH_shard.json":     true,
	}
	if len(paths) != len(wantNames) {
		t.Fatalf("wrote %d reports, want %d: %v", len(paths), len(wantNames), paths)
	}
	for _, p := range paths {
		if !wantNames[filepath.Base(p)] {
			t.Fatalf("unexpected report file %s", p)
		}
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(blob, &rep); err != nil {
			t.Fatalf("%s does not parse: %v", p, err)
		}
		if rep.PageSize != 1024 || rep.Seed != 1 || !rep.Small {
			t.Fatalf("%s: config echo mismatch: %+v", p, rep)
		}
		if len(rep.Measurements) == 0 {
			t.Fatalf("%s holds no measurements", p)
		}
		for _, m := range rep.Measurements {
			if m.Structure == "" || m.N <= 0 || m.B <= 0 || m.Queries <= 0 {
				t.Fatalf("%s: malformed measurement %+v", p, m)
			}
			if m.AvgReads <= 0 || m.Bound <= 0 || m.Ratio <= 0 {
				t.Fatalf("%s: %s n=%d: non-positive accounting %+v", p, m.Structure, m.N, m)
			}
			// Loose sanity: measured I/O within 50x of the predicted bound
			// (IKO's log2 n vs log_B n gap fits comfortably; a broken
			// counter or bound would be orders off).
			if m.Ratio > 50 {
				t.Fatalf("%s: %s n=%d: ratio %.1f implausibly far from bound", p, m.Structure, m.N, m.Ratio)
			}
			// Update-cost measurements are phase averages (a flush-carrying
			// update legitimately costs hundreds of pages against an
			// amortized bound), so they carry no per-op distribution.
			if strings.HasSuffix(m.Structure, "/update") {
				continue
			}
			if m.ReadsHist == nil {
				t.Fatalf("%s: %s n=%d: missing reads histogram", p, m.Structure, m.N)
			}
			if m.ReadsHist.Count != int64(m.Queries) {
				t.Fatalf("%s: %s n=%d: histogram count %d != %d queries",
					p, m.Structure, m.N, m.ReadsHist.Count, m.Queries)
			}
			var bucketSum int64
			for _, bk := range m.ReadsHist.Buckets {
				bucketSum += bk.Count
			}
			if bucketSum != m.ReadsHist.Count {
				t.Fatalf("%s: %s n=%d: histogram buckets sum to %d, count %d",
					p, m.Structure, m.N, bucketSum, m.ReadsHist.Count)
			}
			// The worst single query can't beat the battery average, and a
			// sane structure keeps it within the same loose constant.
			if m.MaxRatio <= 0 || m.MaxRatio > 50 {
				t.Fatalf("%s: %s n=%d: max_ratio %.1f out of range", p, m.Structure, m.N, m.MaxRatio)
			}
		}
	}
}

// TestWriteJSONAtomic pins the two-phase commit of WriteJSON: a family
// that errors mid-suite must leave the output directory exactly as it was
// — no BENCH files from the partial run, no stale mix with previous
// results, and no leaked .tmp stages.
func TestWriteJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PageSize: 1024, Seed: 1, Small: true}

	// Seed the directory with a previous run's report to prove a failed
	// run does not clobber it.
	prev := filepath.Join(dir, "BENCH_twosided.json")
	if err := os.WriteFile(prev, []byte(`{"name":"twosided"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	orig := jsonFamilies
	defer func() { jsonFamilies = orig }()
	ranFirst := false
	jsonFamilies = []func(Config) (Report, error){
		func(cfg Config) (Report, error) {
			ranFirst = true
			return twoSidedReport(cfg)
		},
		func(Config) (Report, error) {
			return Report{}, os.ErrDeadlineExceeded // any sentinel will do
		},
	}

	if _, err := WriteJSON(dir, cfg); err == nil {
		t.Fatal("WriteJSON with failing family: want error, got nil")
	}
	if !ranFirst {
		t.Fatal("first family never ran; injection is miswired")
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "BENCH_twosided.json" {
			t.Fatalf("failed run left %s behind", e.Name())
		}
	}
	blob, err := os.ReadFile(prev)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"name":"twosided"}`+"\n" {
		t.Fatalf("failed run clobbered previous report: %s", blob)
	}
}
