package bench

import (
	"fmt"
	"io"

	"pathcache/internal/disk"
	"pathcache/internal/ext3side"
	"pathcache/internal/extpst"
	"pathcache/internal/extwindow"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// RunE10 measures the 4-sided extension (Figure 1's outermost class, left
// open by the paper): the window range tree vs answering the same window
// with a 3-sided query plus a y2 filter — whose wasted output grows with
// everything above the window.
func RunE10(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E10 (extension): 4-sided windows — range tree vs 3-sided + filter\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\ty-window\tavg t\twindow reads\t3-sided+filter reads\tratio\twindow pages\t3-sided pages")
	ns := cfg.pointNs()
	for _, n := range ns {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		sW := disk.MustStore(cfg.pageSize())
		win, err := extwindow.Build(sW, pts)
		if err != nil {
			return err
		}
		sT := disk.MustStore(cfg.pageSize())
		three, err := ext3side.Build(sT, pts)
		if err != nil {
			return err
		}
		for _, yFrac := range []float64{0.01, 0.2} {
			// Windows sit uniformly in y (not near the top), so the 3-sided
			// route must fetch and discard everything above the window.
			qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, 0.1, 0.02, cfg.seed()+41)
			ys := workload.StabQueries(len(qs), (1<<30)-int64(float64(int64(1)<<30)*yFrac), cfg.seed()+42)
			height := int64(float64(int64(1)<<30) * yFrac)
			var readsW, readsT, results int64
			for qi, q := range qs {
				y1 := ys[qi]
				y2 := y1 + height
				sW.ResetStats()
				got, _, err := win.Query(q.A1, q.A2, y1, y2)
				if err != nil {
					return err
				}
				readsW += sW.Stats().Reads
				results += int64(len(got))

				sT.ResetStats()
				all, _, err := three.Query(q.A1, q.A2, y1)
				if err != nil {
					return err
				}
				readsT += sT.Stats().Reads
				// Filter (free, in memory) — the I/O was already paid.
				kept := 0
				for _, p := range all {
					if p.Y <= y2 {
						kept++
					}
				}
				if kept != len(got) {
					return fmt.Errorf("E10 mismatch: window %d vs filtered %d", len(got), kept)
				}
			}
			qn := float64(len(qs))
			rw, rt := float64(readsW)/qn, float64(readsT)/qn
			fmt.Fprintf(tw, "%d\t%.0f%%\t%.0f\t%.1f\t%.1f\t%.1fx\t%d\t%d\n",
				n, yFrac*100, float64(results)/qn, rw, rt, rt/rw,
				win.TotalPages(), three.TotalPages())
		}
	}
	return tw.Flush()
}

// RunA3 is the workload-shape ablation: the same Segmented index and query
// mix over uniform, clustered, diagonal and Zipf-skewed data. The bounds
// are worst-case; this table shows how data shape moves the constants.
func RunA3(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "A3 (ablation): workload shape vs 2-sided query cost (Segmented scheme)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tn\tavg t\treads/query\twasteful/query\tpages")
	n := 100_000
	if cfg.Small {
		n = 10_000
	}
	const max = 1 << 30
	workloads := []struct {
		name string
		pts  []record.Point
	}{
		{"uniform", workload.UniformPoints(n, max, cfg.seed())},
		{"clustered", workload.ClusteredPoints(n, 8, max, max/64, cfg.seed())},
		{"diagonal", workload.DiagonalPoints(n, max, max/32, cfg.seed())},
		{"zipf-y", workload.ZipfPoints(n, max, 1.2, cfg.seed())},
	}
	qs := workload.TwoSidedQueries(cfg.queries(), max, 0.01, cfg.seed()+43)
	for _, wl := range workloads {
		s := disk.MustStore(cfg.pageSize())
		tr, err := extpst.Build(s, wl.pts, extpst.Segmented)
		if err != nil {
			return err
		}
		var reads, wasteful, results int64
		for _, q := range qs {
			s.ResetStats()
			got, st, err := tr.Query(q.A, q.B)
			if err != nil {
				return err
			}
			reads += s.Stats().Reads
			wasteful += int64(st.WastefulIOs)
			results += int64(len(got))
		}
		qn := float64(len(qs))
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\t%.1f\t%d\n",
			wl.name, n, float64(results)/qn, float64(reads)/qn, float64(wasteful)/qn, tr.TotalPages())
	}
	return tw.Flush()
}
