package bench

// Machine-readable benchmark output: a compact measurement suite whose
// results are written as BENCH_<name>.json files, one per structure family,
// so dashboards and regression scripts can track I/O counts and bound
// ratios without scraping the human-oriented tables.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pathcache/internal/disk"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
	"pathcache/internal/extwindow"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// Measurement is one (structure, n) cell: measured average I/O per query
// beside the paper's predicted bound, and their ratio — the number the
// theorems say must stay O(1) as n grows.
type Measurement struct {
	Structure  string  `json:"structure"`             // e.g. "twosided/segmented"
	N          int     `json:"n"`                     // input size (points or intervals)
	B          int     `json:"b"`                     // records per page
	Queries    int     `json:"queries"`               // battery size
	AvgReads   float64 `json:"avg_reads"`             // measured page reads per query
	AvgResults float64 `json:"avg_results"`           // average t
	Bound      float64 `json:"bound"`                 // predicted reads: search term + t/B
	Ratio      float64 `json:"ratio"`                 // AvgReads / Bound
	Pages      int     `json:"pages"`                 // storage footprint in pages
	SpaceBound float64 `json:"space_bound,omitempty"` // predicted pages, when the theorem gives one
}

// Report is the payload of one BENCH_<name>.json file.
type Report struct {
	Name         string        `json:"name"`
	PageSize     int           `json:"page_size"`
	Seed         int64         `json:"seed"`
	Small        bool          `json:"small"`
	Measurements []Measurement `json:"measurements"`
}

func ratio(measured, bound float64) float64 {
	if bound <= 0 {
		return 0
	}
	return measured / bound
}

// jsonPointNs keeps the JSON suite quick: it is a tracking artifact, not the
// full EXPERIMENTS.md reproduction.
func (c Config) jsonPointNs() []int {
	if c.Small {
		return []int{2_000, 10_000}
	}
	return []int{10_000, 100_000}
}

func twoSidedReport(cfg Config) (Report, error) {
	rep := Report{Name: "twosided", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, 0.01, cfg.seed()+1)
		for _, sc := range []struct {
			name   string
			scheme extpst.Scheme
			search float64 // predicted search term in page reads
		}{
			{"iko", extpst.IKO, float64(log2(n))},
			{"basic", extpst.Basic, float64(logB(n, b))},
			{"segmented", extpst.Segmented, float64(logB(n, b))},
		} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extpst.Build(s, pts, sc.scheme)
			if err != nil {
				return rep, fmt.Errorf("build %s n=%d: %w", sc.name, n, err)
			}
			avgReads, avgT, err := measure2Sided(s, tr, qs)
			if err != nil {
				return rep, fmt.Errorf("query %s n=%d: %w", sc.name, n, err)
			}
			bound := sc.search + avgT/float64(b)
			rep.Measurements = append(rep.Measurements, Measurement{
				Structure:  "twosided/" + sc.name,
				N:          n,
				B:          b,
				Queries:    len(qs),
				AvgReads:   avgReads,
				AvgResults: avgT,
				Bound:      bound,
				Ratio:      ratio(avgReads, bound),
				Pages:      tr.TotalPages(),
			})
		}
	}
	return rep, nil
}

func threeSidedReport(cfg Config) (Report, error) {
	rep := Report{Name: "threeside", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, 0.1, 0.05, cfg.seed()+2)
		s := disk.MustStore(cfg.pageSize())
		tr, err := ext3side.Build(s, pts)
		if err != nil {
			return rep, fmt.Errorf("build threeside n=%d: %w", n, err)
		}
		var reads, results int64
		for _, q := range qs {
			s.ResetStats()
			out, _, err := tr.Query(q.A1, q.A2, q.B)
			if err != nil {
				return rep, fmt.Errorf("query threeside n=%d: %w", n, err)
			}
			reads += s.Stats().Reads
			results += int64(len(out))
		}
		avgReads := float64(reads) / float64(len(qs))
		avgT := float64(results) / float64(len(qs))
		bound := float64(logB(n, b)) + avgT/float64(b)
		rep.Measurements = append(rep.Measurements, Measurement{
			Structure:  "threeside",
			N:          n,
			B:          b,
			Queries:    len(qs),
			AvgReads:   avgReads,
			AvgResults: avgT,
			Bound:      bound,
			Ratio:      ratio(avgReads, bound),
			Pages:      tr.TotalPages(),
		})
	}
	return rep, nil
}

func stabReport(cfg Config) (Report, error) {
	rep := Report{Name: "stabbing", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.IntervalSize)
	for _, n := range cfg.jsonPointNs() {
		ivs := workload.UniformIntervals(n, 1<<30, 1<<24, cfg.seed())
		qs := workload.StabQueries(cfg.queries(), 1<<30, cfg.seed()+3)
		type built struct {
			name string
			stab func(q int64) (int, int64, error) // results, reads
		}
		var variants []built

		for _, v := range []extseg.Variant{extseg.Naive, extseg.PathCached} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extseg.Build(s, ivs, v)
			if err != nil {
				return rep, fmt.Errorf("build segment/%v n=%d: %w", v, n, err)
			}
			variants = append(variants, built{
				name: "segment/" + v.String(),
				stab: func(q int64) (int, int64, error) {
					s.ResetStats()
					out, _, err := tr.Stab(q)
					return len(out), s.Stats().Reads, err
				},
			})
		}
		intStore := disk.MustStore(cfg.pageSize())
		itr, err := extint.Build(intStore, ivs, extint.PathCached)
		if err != nil {
			return rep, fmt.Errorf("build interval n=%d: %w", n, err)
		}
		variants = append(variants, built{
			name: "interval/path-cached",
			stab: func(q int64) (int, int64, error) {
				intStore.ResetStats()
				out, _, err := itr.Stab(q)
				return len(out), intStore.Stats().Reads, err
			},
		})

		for _, v := range variants {
			var reads, results int64
			for _, q := range qs {
				t, r, err := v.stab(q)
				if err != nil {
					return rep, fmt.Errorf("stab %s n=%d: %w", v.name, n, err)
				}
				results += int64(t)
				reads += r
			}
			avgReads := float64(reads) / float64(len(qs))
			avgT := float64(results) / float64(len(qs))
			bound := float64(logB(n, b)) + avgT/float64(b)
			rep.Measurements = append(rep.Measurements, Measurement{
				Structure:  v.name,
				N:          n,
				B:          b,
				Queries:    len(qs),
				AvgReads:   avgReads,
				AvgResults: avgT,
				Bound:      bound,
				Ratio:      ratio(avgReads, bound),
			})
		}
	}
	return rep, nil
}

func windowReport(cfg Config) (Report, error) {
	rep := Report{Name: "window", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, 0.1, 0.05, cfg.seed()+4)
		s := disk.MustStore(cfg.pageSize())
		tr, err := extwindow.Build(s, pts)
		if err != nil {
			return rep, fmt.Errorf("build window n=%d: %w", n, err)
		}
		var reads, results int64
		for _, q := range qs {
			s.ResetStats()
			out, _, err := tr.Query(q.A1, q.A2, q.B, 1<<30)
			if err != nil {
				return rep, fmt.Errorf("query window n=%d: %w", n, err)
			}
			reads += s.Stats().Reads
			results += int64(len(out))
		}
		avgReads := float64(reads) / float64(len(qs))
		avgT := float64(results) / float64(len(qs))
		// The range tree answers in O(log(n/B) + t/B) with a log-factor
		// space blowup (see internal/extwindow).
		bound := float64(log2((n+b-1)/b)) + avgT/float64(b)
		rep.Measurements = append(rep.Measurements, Measurement{
			Structure:  "window/range-tree",
			N:          n,
			B:          b,
			Queries:    len(qs),
			AvgReads:   avgReads,
			AvgResults: avgT,
			Bound:      bound,
			Ratio:      ratio(avgReads, bound),
			Pages:      tr.TotalPages(),
			SpaceBound: float64((n + b - 1) / b * log2((n+b-1)/b)),
		})
	}
	return rep, nil
}

// JSONReports runs the compact measurement suite and returns one report per
// structure family.
func JSONReports(cfg Config) ([]Report, error) {
	var out []Report
	for _, f := range []func(Config) (Report, error){
		twoSidedReport, threeSidedReport, stabReport, windowReport,
	} {
		rep, err := f(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// WriteJSON runs the suite and writes BENCH_<name>.json for every report
// into dir (created if missing). It returns the written paths.
func WriteJSON(dir string, cfg Config) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	reps, err := JSONReports(cfg)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, rep := range reps {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", rep.Name))
		if err := os.WriteFile(p, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
