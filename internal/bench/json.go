package bench

// Machine-readable benchmark output: a compact measurement suite whose
// results are written as BENCH_<name>.json files, one per registered index
// kind, so dashboards and regression scripts can track I/O counts and
// bound ratios without scraping the human-oriented tables. Beside the
// per-battery averages, every measurement carries the log₂-bucketed
// distribution of per-query page reads and the worst single-query
// reads/bound ratio — the same shape the observability layer's sentinels
// police at runtime (DESIGN.md §10).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"pathcache/internal/disk"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
	"pathcache/internal/extwindow"
	"pathcache/internal/lsm"
	"pathcache/internal/obs"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// HistBucket is one non-empty log₂ bucket of a per-query distribution,
// covering the inclusive value range [Lo, Hi].
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Hist is the JSON shape of a per-query reads histogram.
type Hist struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets"`
}

// Measurement is one (structure, n) cell: measured average I/O per query
// beside the paper's predicted bound, and their ratio — the number the
// theorems say must stay O(1) as n grows.
type Measurement struct {
	Structure  string  `json:"structure"`             // e.g. "twosided/segmented"
	N          int     `json:"n"`                     // input size (points or intervals)
	B          int     `json:"b"`                     // records per page
	Queries    int     `json:"queries"`               // battery size
	AvgReads   float64 `json:"avg_reads"`             // measured page reads per query
	AvgResults float64 `json:"avg_results"`           // average t
	Bound      float64 `json:"bound"`                 // predicted reads: search term + t/B
	Ratio      float64 `json:"ratio"`                 // AvgReads / Bound
	Pages      int     `json:"pages"`                 // storage footprint in pages
	SpaceBound float64 `json:"space_bound,omitempty"` // predicted pages, when the theorem gives one
	// ReadsHist distributes the per-query page reads behind AvgReads, and
	// MaxRatio is the worst single-query reads/bound ratio observed (each
	// query checked against its own bound: search term + t_q/B).
	ReadsHist *Hist   `json:"reads_hist,omitempty"`
	MaxRatio  float64 `json:"max_ratio,omitempty"`
}

// Report is the payload of one BENCH_<name>.json file.
type Report struct {
	Name         string        `json:"name"`
	PageSize     int           `json:"page_size"`
	Seed         int64         `json:"seed"`
	Small        bool          `json:"small"`
	Measurements []Measurement `json:"measurements"`
}

func ratio(measured, bound float64) float64 {
	if bound <= 0 {
		return 0
	}
	return measured / bound
}

// querySampler accumulates the per-query distribution behind one
// Measurement: totals for the averages, the reads histogram, and the worst
// per-query bound ratio.
type querySampler struct {
	hist     obs.Histogram
	reads    int64
	results  int64
	queries  int
	maxRatio float64
}

// observe records one query: its page reads, result count, and the bound
// evaluated at this query's own output size.
func (qs *querySampler) observe(reads int64, t int, bound float64) {
	qs.hist.Observe(reads)
	qs.reads += reads
	qs.results += int64(t)
	qs.queries++
	if r := ratio(float64(reads), bound); r > qs.maxRatio {
		qs.maxRatio = r
	}
}

func (qs *querySampler) avgReads() float64 {
	if qs.queries == 0 {
		return 0
	}
	return float64(qs.reads) / float64(qs.queries)
}

func (qs *querySampler) avgResults() float64 {
	if qs.queries == 0 {
		return 0
	}
	return float64(qs.results) / float64(qs.queries)
}

func (qs *querySampler) histJSON() *Hist {
	s := qs.hist.Snapshot()
	h := &Hist{Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max}
	for _, b := range s.Buckets {
		h.Buckets = append(h.Buckets, HistBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	return h
}

// measurement folds the sampler into one JSON cell against the battery's
// average-t bound.
func (qs *querySampler) measurement(structure string, n, b, pages int, search float64) Measurement {
	avgT := qs.avgResults()
	bound := search + avgT/float64(b)
	return Measurement{
		Structure:  structure,
		N:          n,
		B:          b,
		Queries:    qs.queries,
		AvgReads:   qs.avgReads(),
		AvgResults: avgT,
		Bound:      bound,
		Ratio:      ratio(qs.avgReads(), bound),
		Pages:      pages,
		ReadsHist:  qs.histJSON(),
		MaxRatio:   qs.maxRatio,
	}
}

// jsonPointNs keeps the JSON suite quick: it is a tracking artifact, not the
// full EXPERIMENTS.md reproduction.
func (c Config) jsonPointNs() []int {
	if c.Small {
		return []int{2_000, 10_000}
	}
	return []int{10_000, 100_000}
}

func twoSidedReport(cfg Config) (Report, error) {
	rep := Report{Name: "twosided", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, 0.01, cfg.seed()+1)
		for _, sc := range []struct {
			name   string
			scheme extpst.Scheme
			search float64 // predicted search term in page reads
		}{
			{"iko", extpst.IKO, float64(log2(n))},
			{"basic", extpst.Basic, float64(logB(n, b))},
			{"segmented", extpst.Segmented, float64(logB(n, b))},
		} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extpst.Build(s, pts, sc.scheme)
			if err != nil {
				return rep, fmt.Errorf("build %s n=%d: %w", sc.name, n, err)
			}
			var samp querySampler
			for _, q := range qs {
				s.ResetStats()
				out, _, err := tr.Query(q.A, q.B)
				if err != nil {
					return rep, fmt.Errorf("query %s n=%d: %w", sc.name, n, err)
				}
				samp.observe(s.Stats().Reads, len(out), sc.search+float64(len(out))/float64(b))
			}
			rep.Measurements = append(rep.Measurements,
				samp.measurement("twosided/"+sc.name, n, b, tr.TotalPages(), sc.search))
		}
	}
	return rep, nil
}

func threeSidedReport(cfg Config) (Report, error) {
	rep := Report{Name: "threeside", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, 0.1, 0.05, cfg.seed()+2)
		s := disk.MustStore(cfg.pageSize())
		tr, err := ext3side.Build(s, pts)
		if err != nil {
			return rep, fmt.Errorf("build threeside n=%d: %w", n, err)
		}
		search := float64(logB(n, b))
		var samp querySampler
		for _, q := range qs {
			s.ResetStats()
			out, _, err := tr.Query(q.A1, q.A2, q.B)
			if err != nil {
				return rep, fmt.Errorf("query threeside n=%d: %w", n, err)
			}
			samp.observe(s.Stats().Reads, len(out), search+float64(len(out))/float64(b))
		}
		rep.Measurements = append(rep.Measurements,
			samp.measurement("threeside", n, b, tr.TotalPages(), search))
	}
	return rep, nil
}

func segmentReport(cfg Config) (Report, error) {
	rep := Report{Name: "segment", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.IntervalSize)
	for _, n := range cfg.jsonPointNs() {
		ivs := workload.UniformIntervals(n, 1<<30, 1<<24, cfg.seed())
		qs := workload.StabQueries(cfg.queries(), 1<<30, cfg.seed()+3)
		search := float64(logB(n, b))
		for _, v := range []extseg.Variant{extseg.Naive, extseg.PathCached} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extseg.Build(s, ivs, v)
			if err != nil {
				return rep, fmt.Errorf("build segment/%v n=%d: %w", v, n, err)
			}
			var samp querySampler
			for _, q := range qs {
				s.ResetStats()
				out, _, err := tr.Stab(q)
				if err != nil {
					return rep, fmt.Errorf("stab segment/%v n=%d: %w", v, n, err)
				}
				samp.observe(s.Stats().Reads, len(out), search+float64(len(out))/float64(b))
			}
			rep.Measurements = append(rep.Measurements,
				samp.measurement("segment/"+v.String(), n, b, tr.TotalPages(), search))
		}
	}
	return rep, nil
}

func intervalReport(cfg Config) (Report, error) {
	rep := Report{Name: "interval", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.IntervalSize)
	for _, n := range cfg.jsonPointNs() {
		ivs := workload.UniformIntervals(n, 1<<30, 1<<24, cfg.seed())
		qs := workload.StabQueries(cfg.queries(), 1<<30, cfg.seed()+3)
		search := float64(logB(n, b))
		for _, v := range []extint.Variant{extint.Naive, extint.PathCached} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extint.Build(s, ivs, v)
			if err != nil {
				return rep, fmt.Errorf("build interval/%v n=%d: %w", v, n, err)
			}
			var samp querySampler
			for _, q := range qs {
				s.ResetStats()
				out, _, err := tr.Stab(q)
				if err != nil {
					return rep, fmt.Errorf("stab interval/%v n=%d: %w", v, n, err)
				}
				samp.observe(s.Stats().Reads, len(out), search+float64(len(out))/float64(b))
			}
			rep.Measurements = append(rep.Measurements,
				samp.measurement("interval/"+v.String(), n, b, tr.TotalPages(), search))
		}
	}
	return rep, nil
}

// stabbingReport measures interval stabbing through the diagonal-corner
// reduction onto the segmented 2-sided structure — the construction behind
// the public StabbingIndex: interval [lo, hi] becomes the point (-lo, hi)
// and a stab at q becomes the 2-sided query {x >= -q, y >= q}.
func stabbingReport(cfg Config) (Report, error) {
	rep := Report{Name: "stabbing", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		ivs := workload.UniformIntervals(n, 1<<30, 1<<24, cfg.seed())
		pts := make([]record.Point, len(ivs))
		for i, iv := range ivs {
			pts[i] = record.Point{X: -iv.Lo, Y: iv.Hi, ID: iv.ID}
		}
		qs := workload.StabQueries(cfg.queries(), 1<<30, cfg.seed()+3)
		s := disk.MustStore(cfg.pageSize())
		tr, err := extpst.Build(s, pts, extpst.Segmented)
		if err != nil {
			return rep, fmt.Errorf("build stabbing n=%d: %w", n, err)
		}
		search := float64(logB(n, b))
		var samp querySampler
		for _, q := range qs {
			s.ResetStats()
			out, _, err := tr.Query(-q, q)
			if err != nil {
				return rep, fmt.Errorf("stab stabbing n=%d: %w", n, err)
			}
			samp.observe(s.Stats().Reads, len(out), search+float64(len(out))/float64(b))
		}
		rep.Measurements = append(rep.Measurements,
			samp.measurement("stabbing/segmented", n, b, tr.TotalPages(), search))
	}
	return rep, nil
}

func windowReport(cfg Config) (Report, error) {
	rep := Report{Name: "window", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.jsonPointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, 0.1, 0.05, cfg.seed()+4)
		s := disk.MustStore(cfg.pageSize())
		tr, err := extwindow.Build(s, pts)
		if err != nil {
			return rep, fmt.Errorf("build window n=%d: %w", n, err)
		}
		// The range tree answers in O(log(n/B) + t/B) with a log-factor
		// space blowup (see internal/extwindow).
		search := float64(log2((n + b - 1) / b))
		var samp querySampler
		for _, q := range qs {
			s.ResetStats()
			out, _, err := tr.Query(q.A1, q.A2, q.B, 1<<30)
			if err != nil {
				return rep, fmt.Errorf("query window n=%d: %w", n, err)
			}
			samp.observe(s.Stats().Reads, len(out), search+float64(len(out))/float64(b))
		}
		m := samp.measurement("window/range-tree", n, b, tr.TotalPages(), search)
		m.SpaceBound = float64((n + b - 1) / b * log2((n+b-1)/b))
		rep.Measurements = append(rep.Measurements, m)
	}
	return rep, nil
}

// lsmReport measures the dynamic write tier under a mixed read/write
// workload: seed n points into an LSM tree over the 2-sided base, churn it
// with a 70/30 insert/delete phase (flushing and compacting exactly as the
// public layer's thresholds would), then run the query battery against the
// level shape the churn left behind. Two measurements per n:
//
//   - "lsm/update": average page transfers (reads + writes) per update
//     across the churn phase, beside an amortized estimate — one durable
//     WAL tail rewrite (≈2 pages), the per-flush manifest flip and
//     tombstone rewrite (≈6 pages / F updates), and the geometric cascade
//     that rewrites each record through O(log₂(n/F)) level seals at ≈8/B
//     pages per record (data chain + tree + bloom).
//   - "lsm/twosided": per-query page reads against the dynamization bound
//     evaluated at the tree's actual level count and tombstone footprint
//     (obs.LSMBoundAt) — the same formula the StrictBounds sentinels
//     enforce at runtime.
func lsmReport(cfg Config) (Report, error) {
	rep := Report{Name: "lsm", PageSize: cfg.pageSize(), Seed: cfg.seed(), Small: cfg.Small}
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	flushEvery := 256
	base, err := lsm.BaseFor(lsm.BaseTwoSided)
	if err != nil {
		return rep, fmt.Errorf("lsm base: %w", err)
	}
	for _, n := range cfg.jsonPointNs() {
		s := disk.MustStore(cfg.pageSize())
		tr, err := lsm.New(lsm.Config{Pager: s, Base: base, FlushEvery: flushEvery})
		if err != nil {
			return rep, fmt.Errorf("lsm new n=%d: %w", n, err)
		}
		maintain := func() error {
			if tr.NeedsFlush() {
				if _, err := tr.Flush(s); err != nil {
					return fmt.Errorf("lsm flush: %w", err)
				}
			}
			if tr.NeedsCompact() {
				if _, err := tr.Compact(s); err != nil {
					return fmt.Errorf("lsm compact: %w", err)
				}
			}
			return nil
		}
		live := workload.UniformPoints(n, 1<<30, cfg.seed())
		for _, p := range live {
			if err := tr.Insert(s, p); err != nil {
				return rep, fmt.Errorf("lsm seed n=%d: %w", n, err)
			}
			if err := maintain(); err != nil {
				return rep, err
			}
		}

		// Churn phase: measured as total transfers per update so the
		// amortized flush and compaction costs land where they belong.
		rng := rand.New(rand.NewSource(cfg.seed() + 5))
		updates := n / 4
		nextID := uint64(n + 1)
		s.ResetStats()
		for i := 0; i < updates; i++ {
			if rng.Intn(10) < 7 || len(live) == 0 {
				p := record.Point{X: rng.Int63n(1 << 30), Y: rng.Int63n(1 << 30), ID: nextID}
				nextID++
				if err := tr.Insert(s, p); err != nil {
					return rep, fmt.Errorf("lsm insert n=%d: %w", n, err)
				}
				live = append(live, p)
			} else {
				k := rng.Intn(len(live))
				if err := tr.Delete(s, live[k]); err != nil {
					return rep, fmt.Errorf("lsm delete n=%d: %w", n, err)
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if err := maintain(); err != nil {
				return rep, err
			}
		}
		st := s.Stats()
		updBound := 2 + 6/float64(flushEvery) +
			8*float64(log2((tr.Len()+flushEvery-1)/flushEvery))/float64(b)
		rep.Measurements = append(rep.Measurements, Measurement{
			Structure: "lsm/update",
			N:         n,
			B:         b,
			Queries:   updates, // battery size: updates, not queries
			AvgReads:  float64(st.Reads+st.Writes) / float64(updates),
			Bound:     updBound,
			Ratio:     ratio(float64(st.Reads+st.Writes)/float64(updates), updBound),
			Pages:     s.NumPages(),
		})

		// Query battery over the churned tree: every level answers, plus
		// the tombstone chain — the dynamization tax the bound declares.
		qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, 0.01, cfg.seed()+1)
		search := obs.LSMBoundAt(tr.Levels(), tr.TombPages(), tr.Len(), b, 0)
		var samp querySampler
		for _, q := range qs {
			s.ResetStats()
			out, err := tr.Query(s, q.A, q.B)
			if err != nil {
				return rep, fmt.Errorf("lsm query n=%d: %w", n, err)
			}
			samp.observe(s.Stats().Reads, len(out),
				obs.LSMBoundAt(tr.Levels(), tr.TombPages(), tr.Len(), b, len(out)))
		}
		rep.Measurements = append(rep.Measurements,
			samp.measurement("lsm/twosided", tr.Len(), b, s.NumPages(), search))
	}
	return rep, nil
}

// jsonFamilies is the report suite WriteJSON and JSONReports run — one
// family per registered index kind, so checkJSONNames in cmd/pcbench can
// validate BENCH_* names against the engine registry. A package variable
// so the atomic-write regression test can inject a failing family.
var jsonFamilies = []func(Config) (Report, error){
	twoSidedReport, threeSidedReport, segmentReport, intervalReport, stabbingReport, windowReport, lsmReport, shardReport,
}

// JSONReports runs the compact measurement suite and returns one report per
// structure family.
func JSONReports(cfg Config) ([]Report, error) {
	var out []Report
	for _, f := range jsonFamilies {
		rep, err := f(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// WriteJSON runs the suite and writes BENCH_<name>.json for every report
// into dir (created if missing). It returns the written paths.
//
// The write is atomic at suite granularity: every report is staged as
// BENCH_<name>.json.tmp while the suite runs, and the stages are renamed
// into place only after every family succeeded. A family that errors
// mid-run therefore never leaves dir holding a half-updated mix of fresh
// and stale reports — on failure the staged temporaries are removed and
// any previous BENCH files are untouched.
func WriteJSON(dir string, cfg Config) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var tmps, paths []string
	cleanup := func() {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	for _, f := range jsonFamilies {
		rep, err := f(cfg)
		if err != nil {
			cleanup()
			return nil, err
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cleanup()
			return nil, err
		}
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", rep.Name))
		tmp := p + ".tmp"
		if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
			cleanup()
			return nil, err
		}
		tmps = append(tmps, tmp)
		paths = append(paths, p)
	}
	for i, tmp := range tmps {
		if err := os.Rename(tmp, paths[i]); err != nil {
			cleanup()
			return nil, err
		}
	}
	return paths, nil
}
