package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"pathcache"
	"pathcache/internal/btree"
	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

// Layout battery: wall-clock cost of the two in-page layouts across the
// cache spectrum. The differential battery (layoutdiff_test.go at the repo
// root) proves the layouts answer identically with identical page counts;
// this battery measures what the Eytzinger layout buys on top — ns/op of
// the branchless zero-copy read path against the sorted layout's decoded
// reader, cold (every access a store read), warm (a pre-warmed pool absorbs
// every access), and under the async prefetch pipeline. With
// PCBENCH_LAYOUT_OUT set the run writes the BENCH_layout.json measurement
// family; `make bench-layout` wires that up.

type layoutCell struct {
	Structure  string  `json:"structure"` // e.g. "btree/eytzinger"
	Mode       string  `json:"mode"`      // cold | warm | pool
	Prefetch   bool    `json:"prefetch"`
	N          int     `json:"n"`
	Queries    int     `json:"queries"`
	NsPerOp    float64 `json:"ns_per_op"`
	AvgReads   float64 `json:"avg_reads"`
	AvgHits    float64 `json:"avg_hits"`
	AvgResults float64 `json:"avg_results"`
}

type layoutReport struct {
	Name     string `json:"name"`
	PageSize int    `json:"page_size"`
	Seed     int64  `json:"seed"`
	Small    bool   `json:"small"`
	// ColdSpeedup and WarmSpeedup are sorted-ns/op over eytzinger-ns/op for
	// the btree point-query battery without and with the warmed pool. Warm
	// is the headline number: with I/O out of the picture the layouts differ
	// only in per-page CPU work, which is exactly what they were built to
	// change.
	ColdSpeedup  float64      `json:"cold_speedup"`
	WarmSpeedup  float64      `json:"warm_speedup"`
	Measurements []layoutCell `json:"measurements"`
}

const (
	layoutBenchPage = 4096 // the claim is about big pages: >= 4 KiB
	layoutBenchN    = 200_000
	layoutBenchQ    = 4_000
	layoutBenchSeed = 1
	layoutBenchReps = 3 // timed passes; the fastest is reported
)

// timeBattery runs the battery reps times and returns the fastest wall
// clock — the standard defense against scheduler noise in a single pass.
func timeBattery(reps int, battery func()) time.Duration {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		battery()
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
	}
	return best
}

// btreePointBattery measures point queries (Search on a random mix of
// present and absent keys) for one layout, cold and warm, and returns the
// two cells. Every cell also reports a result checksum so the caller can
// pin cross-layout agreement alongside the timings.
func btreePointBattery(t *testing.T, layout disk.Layout, keys []int64) (cold, warm layoutCell, checksum uint64) {
	t.Helper()
	s := disk.MustStore(layoutBenchPage)
	entries := make([]btree.Entry, layoutBenchN)
	for i := range entries {
		// Even keys only, so odd query keys miss: the battery exercises both
		// the found and not-found descent.
		entries[i] = btree.Entry{Key: int64(i) * 2, Val: uint64(i) + 1}
	}
	tr, err := btree.BulkLoadLayout(s, entries, layout)
	if err != nil {
		t.Fatalf("bulk load %v: %v", layout, err)
	}

	name := "btree/" + layout.String()
	run := func(p disk.Pager) (sum uint64, results int64) {
		rd := tr.WithPager(p)
		for _, k := range keys {
			vals, err := rd.Search(k)
			if err != nil {
				t.Fatalf("%s search %d: %v", name, k, err)
			}
			for _, v := range vals {
				sum += v
				results++
			}
		}
		return sum, results
	}

	// Cold: every page access is a store read — the no-cache steady state.
	var ctr disk.Counter
	s.ResetStats()
	coldSum, results := run(disk.WithCounter(s, &ctr))
	coldNs := timeBattery(layoutBenchReps, func() { run(s) })
	cold = layoutCell{
		Structure:  name,
		Mode:       "cold",
		N:          layoutBenchN,
		Queries:    len(keys),
		NsPerOp:    float64(coldNs.Nanoseconds()) / float64(len(keys)),
		AvgReads:   float64(ctr.Stats().Reads) / float64(len(keys)),
		AvgResults: float64(results) / float64(len(keys)),
	}

	// Warm: a pool holding the whole tree, pre-warmed by one untimed pass,
	// absorbs every access — the timed passes do zero store I/O, so the
	// layouts differ only in per-page CPU work.
	// One shard: striping splits capacity across shards, and an unlucky
	// page-id mix could overflow one shard's share and evict. A single LRU
	// with capacity == NumPages provably never evicts.
	pool, err := disk.NewBufferPoolShards(s, s.NumPages(), 1)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	run(pool) // warm it
	var wctr disk.Counter
	warmSum, _ := run(pool.WithCounter(&wctr))
	if coldSum != warmSum {
		t.Fatalf("%s: warm battery checksum %d != cold %d", name, warmSum, coldSum)
	}
	if r := wctr.Stats().Reads; r != 0 {
		t.Fatalf("%s: warmed pool still issued %d store reads", name, r)
	}
	warmNs := timeBattery(layoutBenchReps, func() { run(pool) })
	warm = layoutCell{
		Structure:  name,
		Mode:       "warm",
		N:          layoutBenchN,
		Queries:    len(keys),
		NsPerOp:    float64(warmNs.Nanoseconds()) / float64(len(keys)),
		AvgHits:    float64(wctr.Hits()) / float64(len(keys)),
		AvgResults: float64(results) / float64(len(keys)),
	}
	return cold, warm, coldSum
}

// twoSidedPrefetchBattery measures the public two-sided index (the skeletal
// engine underneath hints the prefetcher during descent) under an
// eviction-prone pool, prefetch off and on, for one layout. The sum
// Reads+CacheHits per battery must not move — prefetch only shifts reads
// into hits — and that invariant is asserted here, not just recorded.
func twoSidedPrefetchBattery(t *testing.T, layout pathcache.Layout, workers int) (layoutCell, int64) {
	t.Helper()
	const (
		n    = 20_000
		q    = 200
		pool = 8 // deliberately tight: evictions give the prefetcher work
	)
	raw := workload.UniformPoints(n, 1<<30, layoutBenchSeed)
	pts := make([]pathcache.Point, len(raw))
	for i, p := range raw {
		pts[i] = pathcache.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented, &pathcache.Options{
		PageSize:        layoutBenchPage,
		BufferPoolPages: pool,
		Layout:          layout,
		PrefetchWorkers: workers,
	})
	if err != nil {
		t.Fatalf("build twosided %v workers=%d: %v", layout, workers, err)
	}
	defer ix.Close()

	// Wide queries: each answer spans several chain pages that are cold in
	// the tight pool, so the descent's next-page hints have latency to hide.
	qs := workload.TwoSidedQueries(q, 1<<30, 0.1, layoutBenchSeed+1)
	var reads, hits, results int64
	for _, tq := range qs {
		out, prof, err := ix.QueryProfile(tq.A, tq.B)
		if err != nil {
			t.Fatalf("twosided %v workers=%d query: %v", layout, workers, err)
		}
		reads += prof.Reads
		hits += prof.CacheHits
		results += int64(len(out))
	}
	ns := timeBattery(layoutBenchReps, func() {
		for _, tq := range qs {
			if _, err := ix.Query(tq.A, tq.B); err != nil {
				t.Fatalf("twosided %v workers=%d query: %v", layout, workers, err)
			}
		}
	})
	return layoutCell{
		Structure:  fmt.Sprintf("twosided/%s", layout),
		Mode:       "pool",
		Prefetch:   workers > 0,
		N:          n,
		Queries:    q,
		NsPerOp:    float64(ns.Nanoseconds()) / float64(q),
		AvgReads:   float64(reads) / float64(q),
		AvgHits:    float64(hits) / float64(q),
		AvgResults: float64(results) / float64(q),
	}, reads + hits
}

func TestLayoutBench(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock battery")
	}
	rng := rand.New(rand.NewSource(layoutBenchSeed))
	keys := make([]int64, layoutBenchQ)
	for i := range keys {
		keys[i] = rng.Int63n(2 * layoutBenchN)
	}

	sortedCold, sortedWarm, sortedSum := btreePointBattery(t, disk.LayoutSorted, keys)
	eytzCold, eytzWarm, eytzSum := btreePointBattery(t, disk.LayoutEytzinger, keys)
	if sortedSum != eytzSum {
		t.Fatalf("layouts disagree on the point battery: sorted checksum %d, eytzinger %d", sortedSum, eytzSum)
	}
	if sortedCold.AvgReads != eytzCold.AvgReads {
		t.Fatalf("cold avg reads diverge: sorted %.3f, eytzinger %.3f (same tree shape must read the same pages)",
			sortedCold.AvgReads, eytzCold.AvgReads)
	}

	rep := layoutReport{
		Name:        "layout",
		PageSize:    layoutBenchPage,
		Seed:        layoutBenchSeed,
		Small:       true,
		ColdSpeedup: sortedCold.NsPerOp / eytzCold.NsPerOp,
		WarmSpeedup: sortedWarm.NsPerOp / eytzWarm.NsPerOp,
	}
	rep.Measurements = append(rep.Measurements, sortedCold, sortedWarm, eytzCold, eytzWarm)

	var sums [2][2]int64 // [layout][prefetch] -> touched pages
	for li, layout := range []pathcache.Layout{pathcache.LayoutSorted, pathcache.LayoutEytzinger} {
		for pi, workers := range []int{0, 2} {
			cell, touched := twoSidedPrefetchBattery(t, layout, workers)
			sums[li][pi] = touched
			rep.Measurements = append(rep.Measurements, cell)
			t.Logf("%s %s prefetch=%v: %.0f ns/op, reads %.2f, hits %.2f",
				cell.Structure, cell.Mode, cell.Prefetch, cell.NsPerOp, cell.AvgReads, cell.AvgHits)
		}
		if sums[li][0] != sums[li][1] {
			t.Fatalf("layout %v: prefetch changed touched pages %d -> %d (must only shift reads into hits)",
				layout, sums[li][0], sums[li][1])
		}
	}
	if sums[0][0] != sums[1][0] {
		t.Fatalf("touched pages diverge across layouts: sorted %d, eytzinger %d", sums[0][0], sums[1][0])
	}

	t.Logf("btree point queries, %d keys, %d queries, %dB pages", layoutBenchN, layoutBenchQ, layoutBenchPage)
	t.Logf("  sorted:    cold %.0f ns/op, warm %.0f ns/op", sortedCold.NsPerOp, sortedWarm.NsPerOp)
	t.Logf("  eytzinger: cold %.0f ns/op, warm %.0f ns/op", eytzCold.NsPerOp, eytzWarm.NsPerOp)
	t.Logf("  speedup:   cold %.2fx, warm %.2fx", rep.ColdSpeedup, rep.WarmSpeedup)

	// The tentpole claim: with I/O removed the zero-copy branchless path must
	// be decisively faster at 4 KiB pages. The committed artifact records the
	// measured ratio (>= 1.5x on every machine tried); the gate leaves head
	// room for noisy shared CI runners without letting a regression to parity
	// slip through.
	if rep.WarmSpeedup < 1.2 {
		t.Errorf("warm-pool speedup %.2fx below 1.2x: the branchless read path regressed", rep.WarmSpeedup)
	}

	if out := os.Getenv("PCBENCH_LAYOUT_OUT"); out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench: %v", err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}
