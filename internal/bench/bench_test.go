package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every runner must produce a non-empty table without error in Small mode.
func TestAllRunnersSmall(t *testing.T) {
	cfg := Config{Small: true, PageSize: 512, Seed: 3}
	for _, r := range Runners() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s: suspiciously short output: %q", r.Name, out)
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("%s: no table rows", r.Name)
			}
		})
	}
}

func TestRunAllSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, Config{Small: true, PageSize: 512}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1:", "E2:", "E3:", "E4:", "E5/F3:", "E6:", "E7:", "E8:", "F2:", "F4:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("RunAll output missing %q", want)
		}
	}
}

func TestRunnersHaveUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Runners() {
		if seen[r.Name] {
			t.Fatalf("duplicate runner %q", r.Name)
		}
		seen[r.Name] = true
		if r.Desc == "" || r.Run == nil {
			t.Fatalf("runner %q incomplete", r.Name)
		}
	}
}
