package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"pathcache/internal/disk"
	"pathcache/internal/extpst"
	"pathcache/internal/workload"
)

// RunPar measures the concurrency story the paper's per-query bounds leave
// open: warm-cache batch-query throughput as workers grow, through the
// sharded buffer pool over a simulated device with per-page read latency.
// Cache hits are free; misses block for the device latency, so concurrent
// workers overlap their I/O waits exactly as production batch engines do —
// throughput scales with workers even on one core. Queries are fanned
// worker w -> queries w, w+W, ... (the same deterministic partition the
// public QueryBatch API uses), so the answer sets are
// scheduling-independent even though wall-clock numbers are not. The shape
// to observe: queries/sec scales with workers while the pool hit rate stays
// flat — concurrency changes throughput, not I/O.
func RunPar(w io.Writer, cfg Config) error {
	// This experiment pins its own small page size regardless of cfg: at the
	// default 4 KiB page (B=170) even the full tree fits a modest pool, the
	// hit rate saturates at 100%, and the ladder degenerates into a
	// single-core CPU benchmark. B=21 keeps the query working set well above
	// the pool, so the miss path — the part the sharded pool parallelizes —
	// carries the measurement.
	const (
		pageSize  = 512
		readDelay = 100 * time.Microsecond
	)
	n := 100_000
	queries := 1_000
	poolPages := 128
	const cornerFrac = 0.75
	if cfg.Small {
		n = 10_000
		queries = 200
		poolPages = 32
	}
	maxWorkers := cfg.Workers
	if maxWorkers <= 0 {
		maxWorkers = 8
	}

	b := disk.ChainCap(pageSize, 24)
	fmt.Fprintf(w, "P1: parallel batch-query throughput through the sharded pool\n")
	fmt.Fprintf(w, "    n=%d queries=%d page=%dB B=%d pool=%d frames  miss latency=%v\n\n",
		n, queries, pageSize, b, poolPages, readDelay)

	s := disk.MustStore(pageSize)
	slow := &disk.SlowPager{Inner: s}
	pool, err := disk.NewBufferPool(slow, poolPages)
	if err != nil {
		return err
	}
	pts := workload.UniformPoints(n, 1<<30, cfg.seed())
	tr, err := extpst.Build(pool, pts, extpst.Segmented)
	if err != nil {
		return err
	}
	// The build ran at zero latency; only measured query misses pay.
	slow.ReadDelay = readDelay
	// Query corners spread across the top-right [cornerFrac, 1) band of the
	// domain, so the batch touches far more pages than the pool holds: the
	// steady state has real misses for workers to overlap, unlike the
	// single-corner generator whose working set fits any pool.
	rng := rand.New(rand.NewSource(cfg.seed() + 41))
	lo := int64(float64(1<<30) * cornerFrac)
	span := int64(1<<30) - lo
	qs := make([]workload.TwoSidedQuery, queries)
	for i := range qs {
		qs[i] = workload.TwoSidedQuery{A: lo + rng.Int63n(span), B: lo + rng.Int63n(span)}
	}

	// Warm the pool once so every run below measures the steady state.
	runPartition := func(workers int) (results int64, elapsed time.Duration, err error) {
		var wg sync.WaitGroup
		counts := make([]int64, workers)
		errs := make([]error, workers)
		start := time.Now()
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(qs); i += workers {
					got, _, err := tr.Query(qs[i].A, qs[i].B)
					if err != nil {
						errs[g] = err
						return
					}
					counts[g] += int64(len(got))
				}
			}(g)
		}
		wg.Wait()
		elapsed = time.Since(start)
		for g := 0; g < workers; g++ {
			if errs[g] != nil {
				return 0, 0, errs[g]
			}
			results += counts[g]
		}
		return results, elapsed, nil
	}
	wantResults, _, err := runPartition(1)
	if err != nil {
		return err
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "workers\tpool shards\tqueries/sec\tspeedup\thit rate\tresults")
	var serialQPS float64
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		pool.ResetStats()
		results, elapsed, err := runPartition(workers)
		if err != nil {
			return err
		}
		if results != wantResults {
			return fmt.Errorf("parallel run with %d workers returned %d results, want %d",
				workers, results, wantResults)
		}
		qps := float64(len(qs)) / elapsed.Seconds()
		if workers == 1 {
			serialQPS = qps
		}
		ps := pool.Stats()
		hitRate := 0.0
		if ps.Hits+ps.Misses > 0 {
			hitRate = float64(ps.Hits) / float64(ps.Hits+ps.Misses)
		}
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.2fx\t%.0f%%\t%d\n",
			workers, pool.NumShards(), qps, qps/serialQPS, hitRate*100, results)
	}
	return tw.Flush()
}
