package bench

import (
	"fmt"
	"io"

	"pathcache/internal/disk"
	"pathcache/internal/dyn3side"
	"pathcache/internal/extpst"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// RunA1 is the chunk-length ablation for Theorem 3.2's design choice: the
// paper cuts the root-to-node path into log B-sized segments. Shorter
// chunks shrink each node's caches (less space) but add a chunk boundary —
// two direct block reads — per segment of every query; longer chunks do the
// reverse, with the full-path Basic scheme as the limit. The sweet spot
// should sit near log B.
func RunA1(w io.Writer, cfg Config) error {
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	fmt.Fprintf(w, "A1 (ablation): cache chunk length vs query cost and space (log B = %d)\n\n", log2(b))
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tchunk\tquery reads (sel=1e-3)\tquery reads (sel=1e-1)\tpages")
	ns := []int{50_000, 200_000}
	if cfg.Small {
		ns = []int{10_000}
	}
	logB := log2(b)
	for _, n := range ns {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		chunks := []int{1, 2, logB / 2, logB, 2 * logB, 4 * logB}
		for _, chunk := range chunks {
			if chunk < 1 {
				continue
			}
			s := disk.MustStore(cfg.pageSize())
			tr, err := extpst.BuildChunked(s, pts, extpst.Segmented, chunk)
			if err != nil {
				return err
			}
			var reads [2]float64
			for i, sel := range []float64{0.001, 0.1} {
				qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, sel, cfg.seed()+29)
				r, _, err := measure2Sided(s, tr, qs)
				if err != nil {
					return err
				}
				reads[i] = r
			}
			label := fmt.Sprintf("%d", chunk)
			if chunk == logB {
				label += " (=logB)"
			}
			fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.1f\t%d\n", n, label, reads[0], reads[1], tr.TotalPages())
		}
	}
	return tw.Flush()
}

// RunA2 is the buffer-pool ablation: the paper's bounds are worst-case
// (cold) I/O; a pool converts repeated path pages into hits. The table
// shows store reads per query as the pool grows from nothing to
// index-sized.
func RunA2(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "A2 (ablation): LRU buffer pool size vs store reads per query\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tpool pages\tstore reads/query\thit rate")
	n := 100_000
	if cfg.Small {
		n = 10_000
	}
	pts := workload.UniformPoints(n, 1<<30, cfg.seed())
	qs := workload.TwoSidedQueries(cfg.queries()*4, 1<<30, 0.001, cfg.seed()+31)
	for _, poolPages := range []int{0, 16, 128, 1024, 8192} {
		s := disk.MustStore(cfg.pageSize())
		var pager disk.Pager = s
		var pool *disk.BufferPool
		if poolPages > 0 {
			var err error
			pool, err = disk.NewBufferPool(s, poolPages)
			if err != nil {
				return err
			}
			pager = pool
		}
		tr, err := extpst.Build(pager, pts, extpst.Segmented)
		if err != nil {
			return err
		}
		if pool != nil {
			if err := pool.Flush(); err != nil {
				return err
			}
			pool.ResetStats()
		}
		s.ResetStats()
		for _, q := range qs {
			if _, _, err := tr.Query(q.A, q.B); err != nil {
				return err
			}
		}
		reads := float64(s.Stats().Reads) / float64(len(qs))
		hitRate := 0.0
		if pool != nil {
			ps := pool.Stats()
			if ps.Hits+ps.Misses > 0 {
				hitRate = float64(ps.Hits) / float64(ps.Hits+ps.Misses)
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.0f%%\n", n, poolPages, reads, hitRate*100)
	}
	return tw.Flush()
}

// RunE9 measures the dynamic 3-sided structure (Theorem 5.2): amortized
// update cost against the theorem's O(log_B n·log² B) budget, and query
// cost against the optimal shape.
func RunE9(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E9: dynamic 3-sided structure (Theorem 5.2)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tinsert IO/op\tdelete IO/op\tquery reads\tavg t\tpages\tThm 5.2 budget")
	ns := []int{10_000, 50_000, 150_000}
	if cfg.Small {
		ns = []int{2_000, 10_000}
	}
	for _, n := range ns {
		s := disk.MustStore(cfg.pageSize())
		tr, err := dyn3side.New(s)
		if err != nil {
			return err
		}
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		s.ResetStats()
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				return err
			}
		}
		insertIO := float64(s.Stats().Total()) / float64(n)

		qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, 0.1, 0.01, cfg.seed()+37)
		var reads, results int64
		for _, q := range qs {
			s.ResetStats()
			got, _, err := tr.Query(q.A1, q.A2, q.B)
			if err != nil {
				return err
			}
			reads += s.Stats().Reads
			results += int64(len(got))
		}
		pages := s.NumPages()

		del := n / 2
		s.ResetStats()
		for _, p := range pts[:del] {
			if err := tr.Delete(p); err != nil {
				return err
			}
		}
		deleteIO := float64(s.Stats().Total()) / float64(del)

		b := tr.B()
		budget := float64(logB(n, b)) * float64(log2(b)) * float64(log2(b))
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.0f\t%d\t%.0f\n",
			n, insertIO, deleteIO,
			float64(reads)/float64(len(qs)), float64(results)/float64(len(qs)),
			pages, budget)
	}
	return tw.Flush()
}
