// Package bench implements the experiment harness of EXPERIMENTS.md: one
// runner per experiment (E1–E10), figure reproduction (F2, F4) and ablation
// (A1–A3), each printing the table that stands in for the evaluation
// section the extended abstract never had. Runners measure page transfers on the simulated disk
// and print them next to the paper's predicted terms.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"pathcache/internal/disk"
	"pathcache/internal/dynpst"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
	"pathcache/internal/logmethod"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// PageSize in bytes (default 4096).
	PageSize int
	// Seed for all workloads (default 1).
	Seed int64
	// Small switches to reduced sizes so the whole suite runs in seconds
	// (used by tests; the default sizes match EXPERIMENTS.md).
	Small bool
	// Workers caps the worker ladder of the parallel-throughput runner
	// (default 8).
	Workers int
}

func (c Config) pageSize() int {
	if c.PageSize == 0 {
		return 4096
	}
	return c.PageSize
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) pointNs() []int {
	if c.Small {
		return []int{2_000, 10_000}
	}
	return []int{10_000, 100_000, 400_000}
}

func (c Config) queries() int {
	if c.Small {
		return 10
	}
	return 50
}

// logB is ceil(log_b n), the paper's search term.
func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}

func log2(n int) int {
	r := 0
	for v := 1; v < n; v *= 2 {
		r++
	}
	return r
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// measure2Sided runs the queries cold and returns average reads per query
// and average results per query.
func measure2Sided(s *disk.Store, idx extpst.PointIndex, qs []workload.TwoSidedQuery) (avgReads, avgT float64, err error) {
	var reads, results int64
	for _, q := range qs {
		s.ResetStats()
		pts, _, err := idx.Query(q.A, q.B)
		if err != nil {
			return 0, 0, err
		}
		reads += s.Stats().Reads
		results += int64(len(pts))
	}
	n := float64(len(qs))
	return float64(reads) / n, float64(results) / n, nil
}

// RunE1 reproduces experiment E1: 2-sided query I/O versus n and
// selectivity for the IKO baseline and the flat cached schemes
// (Lemma 3.1 / Theorem 3.2). The shape to observe: IKO grows with log2 n,
// the cached schemes with log_B n, and all share the t/B output term.
func RunE1(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E1: 2-sided query I/Os — optimal O(log_B n + t/B) vs IKO's O(log n + t/B)\n")
	fmt.Fprintf(w, "    page=%dB  B=%d points/page\n\n", cfg.pageSize(), disk.ChainCap(cfg.pageSize(), record.PointSize))
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tselectivity\tavg t\tIKO\tbasic\tsegmented\tpredict log2(n/B)\tpredict logB(n)\tt/B")
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.pointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		trees := map[extpst.Scheme]extpst.PointIndex{}
		stores := map[extpst.Scheme]*disk.Store{}
		for _, sc := range []extpst.Scheme{extpst.IKO, extpst.Basic, extpst.Segmented} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extpst.Build(s, pts, sc)
			if err != nil {
				return err
			}
			trees[sc], stores[sc] = tr, s
		}
		for _, sel := range []float64{0.0001, 0.001, 0.01, 0.1} {
			qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, sel, cfg.seed()+7)
			row := map[extpst.Scheme]float64{}
			var avgT float64
			for sc, tr := range trees {
				r, t, err := measure2Sided(stores[sc], tr, qs)
				if err != nil {
					return err
				}
				row[sc], avgT = r, t
			}
			fmt.Fprintf(tw, "%d\t%g\t%.0f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%.1f\n",
				n, sel, avgT, row[extpst.IKO], row[extpst.Basic], row[extpst.Segmented],
				log2(n/b+2), logB(n, b), avgT/float64(b))
		}
	}
	return tw.Flush()
}

// RunE2 reproduces experiment E2: the storage ladder across every scheme
// and several page sizes. Shape: IKO ~ n/B; Segmented ~ (n/B)·log B;
// Basic ~ (n/B)·log(n/B); TwoLevel ~ (n/B)·log log B below Segmented for
// B >> log B; Multilevel within a small factor of TwoLevel (log* B equals
// log log B at any realistic B — the crossover E2 documents).
func RunE2(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E2: storage in pages — the space ladder of Sections 3 and 4\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "page\tB\tn\tn/B\tIKO\tbasic\tsegmented\ttwo-level\tmultilevel\tlogB\tloglogB")
	sizes := []int{512, 4096, 16384}
	if cfg.Small {
		sizes = []int{512, 4096}
	}
	for _, ps := range sizes {
		b := disk.ChainCap(ps, record.PointSize)
		for _, n := range cfg.pointNs() {
			pts := workload.UniformPoints(n, 1<<30, cfg.seed())
			pages := map[string]int{}
			for _, sc := range []extpst.Scheme{extpst.IKO, extpst.Basic, extpst.Segmented} {
				s := disk.MustStore(ps)
				tr, err := extpst.Build(s, pts, sc)
				if err != nil {
					return err
				}
				pages[sc.String()] = tr.TotalPages()
			}
			for name, levels := range map[string]int{"two-level": 2, "multilevel": 64} {
				s := disk.MustStore(ps)
				tr, err := extpst.BuildHierarchical(s, pts, levels)
				if err != nil {
					return err
				}
				pages[name] = tr.TotalPages()
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				ps, b, n, n/b, pages["iko"], pages["basic"], pages["segmented"],
				pages["two-level"], pages["multilevel"], log2(b), log2(log2(b)+1))
		}
	}
	return tw.Flush()
}

// RunE3 reproduces experiment E3: query I/O of the recursive schemes
// (Theorems 4.3/4.4) stays optimal while their storage shrinks.
func RunE3(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E3: 2-sided query I/Os for the recursive schemes (Theorems 4.3/4.4)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tselectivity\tavg t\tsegmented\ttwo-level\tmultilevel\tpredict logB(n)+t/B")
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.pointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		idx := map[string]extpst.PointIndex{}
		st := map[string]*disk.Store{}
		{
			s := disk.MustStore(cfg.pageSize())
			tr, err := extpst.Build(s, pts, extpst.Segmented)
			if err != nil {
				return err
			}
			idx["segmented"], st["segmented"] = tr, s
		}
		for name, levels := range map[string]int{"two-level": 2, "multilevel": 64} {
			s := disk.MustStore(cfg.pageSize())
			tr, err := extpst.BuildHierarchical(s, pts, levels)
			if err != nil {
				return err
			}
			idx[name], st[name] = tr, s
		}
		for _, sel := range []float64{0.0001, 0.01, 0.1} {
			qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, sel, cfg.seed()+9)
			row := map[string]float64{}
			var avgT float64
			for name, tr := range idx {
				r, t, err := measure2Sided(st[name], tr, qs)
				if err != nil {
					return err
				}
				row[name], avgT = r, t
			}
			fmt.Fprintf(tw, "%d\t%g\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				n, sel, avgT, row["segmented"], row["two-level"], row["multilevel"],
				float64(logB(n, b))+avgT/float64(b))
		}
	}
	return tw.Flush()
}

// RunE4 reproduces experiment E4 (Theorem 5.1): amortized update cost and
// query cost of the dynamic structure across n, against the folklore
// logarithmic-method baseline. Shape: both update cheaply, but the
// logarithmic method pays a per-level query tax (O(log(n/B)·log_B n + t/B))
// that the paper's buffered structure avoids.
func RunE4(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E4: dynamic structure (Theorem 5.1) vs the logarithmic-method baseline\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tinsert IO/op\tdelete IO/op\tquery reads\tavg t\tpages\tlogm insert\tlogm query\tlogm levels\tpredict logB(n)")
	// Dynamic sizes are capped: super-node re-levelling makes full-size
	// builds wall-clock heavy without changing the log_B n shape.
	ns := []int{10_000, 50_000, 150_000}
	if cfg.Small {
		ns = []int{2_000, 10_000}
	}
	for _, n := range ns {
		s := disk.MustStore(cfg.pageSize())
		tr, err := dynpst.New(s)
		if err != nil {
			return err
		}
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		s.ResetStats()
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				return err
			}
		}
		insertIO := float64(s.Stats().Total()) / float64(n)

		qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, 0.01, cfg.seed()+11)
		var reads, results int64
		for _, q := range qs {
			s.ResetStats()
			got, _, err := tr.Query(q.A, q.B)
			if err != nil {
				return err
			}
			reads += s.Stats().Reads
			results += int64(len(got))
		}
		pages := s.NumPages()

		del := n / 2
		s.ResetStats()
		for _, p := range pts[:del] {
			if err := tr.Delete(p); err != nil {
				return err
			}
		}
		deleteIO := float64(s.Stats().Total()) / float64(del)

		// The logarithmic-method baseline over the same trace.
		sL := disk.MustStore(cfg.pageSize())
		lm, err := logmethod.New(sL)
		if err != nil {
			return err
		}
		sL.ResetStats()
		for _, p := range pts {
			if err := lm.Insert(p); err != nil {
				return err
			}
		}
		lmInsertIO := float64(sL.Stats().Total()) / float64(n)
		var lmReads int64
		for _, q := range qs {
			sL.ResetStats()
			if _, err := lm.Query(q.A, q.B); err != nil {
				return err
			}
			lmReads += sL.Stats().Reads
		}

		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.0f\t%d\t%.1f\t%.1f\t%d\t%d\n",
			n, insertIO, deleteIO,
			float64(reads)/float64(len(qs)), float64(results)/float64(len(qs)),
			pages, lmInsertIO, float64(lmReads)/float64(len(qs)), lm.Levels(), logB(n, tr.B()))
	}
	return tw.Flush()
}

// RunE5 reproduces experiment E5 (Theorem 3.4) and Figure 3: stabbing cost
// of the external segment tree, naive vs path-cached, with the wasteful /
// useful I/O split. Shape: the naive variant's wasteful I/Os track the tree
// depth (log n), the cached variant's stay O(1)+paid.
func RunE5(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E5/F3: external segment tree stabbing — naive vs path-cached (Figure 3)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tn\tavg t\tnaive reads\tnaive wasteful\tcached reads\tcached wasteful\tcached pages\tnaive pages")
	for _, wl := range []string{"uniform", "nested"} {
		for _, n := range cfg.pointNs() {
			var ivs []record.Interval
			if wl == "uniform" {
				ivs = workload.UniformIntervals(n, 1<<30, 1<<24, cfg.seed())
			} else {
				ivs = workload.NestedIntervals(n, 200, 1<<30, cfg.seed())
			}
			qs := workload.StabQueries(cfg.queries(), 1<<30, cfg.seed()+13)
			type res struct {
				reads, wasteful, t float64
				pages              int
			}
			out := map[extseg.Variant]res{}
			for _, v := range []extseg.Variant{extseg.Naive, extseg.PathCached} {
				s := disk.MustStore(cfg.pageSize())
				tr, err := extseg.Build(s, ivs, v)
				if err != nil {
					return err
				}
				var reads, wasteful, results int64
				for _, q := range qs {
					s.ResetStats()
					got, st, err := tr.Stab(q)
					if err != nil {
						return err
					}
					reads += s.Stats().Reads
					wasteful += int64(st.WastefulIOs)
					results += int64(len(got))
				}
				qn := float64(len(qs))
				out[v] = res{float64(reads) / qn, float64(wasteful) / qn, float64(results) / qn, tr.TotalPages()}
			}
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
				wl, n, out[extseg.PathCached].t,
				out[extseg.Naive].reads, out[extseg.Naive].wasteful,
				out[extseg.PathCached].reads, out[extseg.PathCached].wasteful,
				out[extseg.PathCached].pages, out[extseg.Naive].pages)
		}
	}
	return tw.Flush()
}

// RunE6 reproduces experiment E6 (Theorem 3.5): the external interval tree
// matches the segment tree's optimal queries in a log n / log B factor less
// space.
func RunE6(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E6: external interval tree (Theorem 3.5) vs segment tree (Theorem 3.4)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tavg t\tinterval reads\tsegment reads\tinterval pages\tsegment pages\tpage ratio")
	for _, n := range cfg.pointNs() {
		ivs := workload.UniformIntervals(n, 1<<30, 1<<24, cfg.seed())
		qs := workload.StabQueries(cfg.queries(), 1<<30, cfg.seed()+17)

		sI := disk.MustStore(cfg.pageSize())
		ti, err := extint.Build(sI, ivs, extint.PathCached)
		if err != nil {
			return err
		}
		sS := disk.MustStore(cfg.pageSize())
		ts, err := extseg.Build(sS, ivs, extseg.PathCached)
		if err != nil {
			return err
		}
		var readsI, readsS, results int64
		for _, q := range qs {
			sI.ResetStats()
			got, _, err := ti.Stab(q)
			if err != nil {
				return err
			}
			readsI += sI.Stats().Reads
			results += int64(len(got))
			sS.ResetStats()
			if _, _, err := ts.Stab(q); err != nil {
				return err
			}
			readsS += sS.Stats().Reads
		}
		qn := float64(len(qs))
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%.1f\t%d\t%d\t%.2f\n",
			n, float64(results)/qn, float64(readsI)/qn, float64(readsS)/qn,
			ti.TotalPages(), ts.TotalPages(),
			float64(ts.TotalPages())/float64(ti.TotalPages()))
	}
	return tw.Flush()
}

// RunE7 reproduces experiment E7 (Theorems 3.3/4.5): 3-sided query cost
// versus window width and selectivity.
func RunE7(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E7: 3-sided queries (Theorems 3.3/4.5)\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\twindow\tselectivity\tavg t\treads\tpredict logB(n)+t/B\tpages")
	b := disk.ChainCap(cfg.pageSize(), record.PointSize)
	for _, n := range cfg.pointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		s := disk.MustStore(cfg.pageSize())
		tr, err := ext3side.Build(s, pts)
		if err != nil {
			return err
		}
		for _, wf := range []float64{0.01, 0.1, 0.5} {
			for _, sel := range []float64{0.001, 0.01} {
				if sel >= wf {
					continue
				}
				qs := workload.ThreeSidedQueries(cfg.queries(), 1<<30, wf, sel, cfg.seed()+19)
				var reads, results int64
				for _, q := range qs {
					s.ResetStats()
					got, _, err := tr.Query(q.A1, q.A2, q.B)
					if err != nil {
						return err
					}
					reads += s.Stats().Reads
					results += int64(len(got))
				}
				qn := float64(len(qs))
				avgT := float64(results) / qn
				fmt.Fprintf(tw, "%d\t%g\t%g\t%.0f\t%.1f\t%.1f\t%d\n",
					n, wf, sel, avgT, float64(reads)/qn,
					float64(logB(n, b))+avgT/float64(b), tr.TotalPages())
			}
		}
	}
	return tw.Flush()
}

// RunE8 reproduces experiment E8: the B+-tree is optimal in one dimension
// but answering a 2-sided query by x-range scan plus filter reads t_x/B
// pages where the 2-sided structure reads t/B — the motivating gap of
// Section 1.
func RunE8(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "E8: B+-tree 1-D baseline vs 2-sided structure on 2-D queries\n\n")
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tselectivity\tavg t\tavg t_x\tbtree reads\tsegmented reads\tratio")
	for _, n := range cfg.pointNs() {
		pts := workload.UniformPoints(n, 1<<30, cfg.seed())
		sB := disk.MustStore(cfg.pageSize())
		bt, err := NewBTreeOnX(sB, pts)
		if err != nil {
			return err
		}
		sP := disk.MustStore(cfg.pageSize())
		tp, err := extpst.Build(sP, pts, extpst.Segmented)
		if err != nil {
			return err
		}
		// y-lookup table for the filter (in memory; the B+-tree pays only
		// for the x-scan, which is generous to the baseline).
		yOf := make(map[uint64]int64, n)
		for _, p := range pts {
			yOf[p.ID] = p.Y
		}
		for _, sel := range []float64{0.001, 0.01} {
			qs := workload.TwoSidedQueries(cfg.queries(), 1<<30, sel, cfg.seed()+23)
			var readsB, readsP, results, xMatches int64
			for _, q := range qs {
				sB.ResetStats()
				var t, tx int64
				err := bt.Range(q.A, 1<<62, func(_ int64, id uint64) bool {
					tx++
					if yOf[id] >= q.B {
						t++
					}
					return true
				})
				if err != nil {
					return err
				}
				readsB += sB.Stats().Reads
				results += t
				xMatches += tx
				sP.ResetStats()
				if _, _, err := tp.Query(q.A, q.B); err != nil {
					return err
				}
				readsP += sP.Stats().Reads
			}
			qn := float64(len(qs))
			rb, rp := float64(readsB)/qn, float64(readsP)/qn
			fmt.Fprintf(tw, "%d\t%g\t%.0f\t%.0f\t%.1f\t%.1f\t%.1fx\n",
				n, sel, float64(results)/qn, float64(xMatches)/qn, rb, rp, rb/rp)
		}
	}
	return tw.Flush()
}
