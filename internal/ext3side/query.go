package ext3side

import (
	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// tsQuery carries the state of one 3-sided query.
type tsQuery struct {
	t         *Tree
	w         *skeletal.Walker
	a1, a2, b int64
	out       []record.Point
	st        QueryStats
}

// Query reports every indexed point with a1 <= x <= a2 and y >= b.
func (t *Tree) Query(a1, a2, b int64) ([]record.Point, QueryStats, error) {
	q := &tsQuery{t: t, w: t.skel.NewWalker(), a1: a1, a2: a2, b: b}
	if t.n == 0 || a1 > a2 {
		return nil, q.st, nil
	}

	// Fork descent: follow the window while both bounds route the same way
	// and the subtree can still reach y >= b. Strict comparisons guarantee
	// that subtrees hanging off the fork path lie entirely outside the
	// window.
	fpath, err := q.w.Descend(t.skel.Root(), func(n skeletal.Node) skeletal.Dir {
		if plMinY(n.Payload) < b {
			return skeletal.Stop
		}
		if a2 < n.Key {
			return skeletal.Left
		}
		if a1 > n.Key {
			return skeletal.Right
		}
		return skeletal.Stop
	})
	if err != nil {
		return nil, q.st, err
	}
	q.st.PathPages = q.w.PagesLoaded()
	forkDepth := len(fpath) - 1
	fork := fpath[forkDepth]

	// Fork-path walk: the fork's own block directly, ancestors from AY
	// caches chunk by chunk, chunk-boundary blocks directly.
	if err := q.scanBlockWindow(fork.Payload); err != nil {
		return nil, q.st, err
	}
	cur := forkDepth
	for {
		cs := q.t.chunkStart(cur)
		if head, count := plList(fpath[cur].Payload, offAY); count > 0 {
			if err := q.scanYDescWindow(head); err != nil {
				return nil, q.st, err
			}
		}
		if cs == 0 {
			break
		}
		bj := cs - 1
		if err := q.scanBlockWindow(fpath[bj].Payload); err != nil {
			return nil, q.st, err
		}
		cur = bj
	}

	// The two below-fork walks run only when the descent stopped on a
	// routing split with the subtree still above b.
	if plMinY(fork.Payload) >= b && a1 <= fork.Key && a2 >= fork.Key {
		if fork.Left.Valid() {
			if err := q.sideWalk(fork.Left, forkDepth, true); err != nil {
				return nil, q.st, err
			}
		}
		if fork.Right.Valid() {
			if err := q.sideWalk(fork.Right, forkDepth, false); err != nil {
				return nil, q.st, err
			}
		}
	}
	q.st.Results = len(q.out)
	return q.out, q.st, nil
}

// sideWalk runs the 2-sided machinery inside one child subtree of the fork:
// leftSide=true descends toward a1 in the left subtree (right-hanging
// siblings are inside the window); leftSide=false mirrors toward a2.
func (q *tsQuery) sideWalk(start skeletal.NodeRef, forkDepth int, leftSide bool) error {
	path, err := q.w.Descend(start, func(n skeletal.Node) skeletal.Dir {
		if plMinY(n.Payload) < q.b {
			return skeletal.Stop
		}
		if leftSide {
			if q.a1 <= n.Key {
				return skeletal.Left
			}
			return skeletal.Right
		}
		if q.a2 < n.Key {
			return skeletal.Left
		}
		return skeletal.Right
	})
	if err != nil {
		return err
	}
	last := len(path) - 1
	corner := path[last]
	if err := q.scanBlockWindow(corner.Payload); err != nil {
		return err
	}
	// Descent ended on a missing child with the subtree still above b: the
	// other child is a sibling fully inside the window.
	if plMinY(corner.Payload) >= q.b {
		if leftSide && q.a1 <= corner.Key && corner.Right.Valid() {
			if err := q.explore(corner.Right); err != nil {
				return err
			}
		}
		if !leftSide && q.a2 >= corner.Key && corner.Left.Valid() {
			if err := q.explore(corner.Left); err != nil {
				return err
			}
		}
	}

	// Chunk walk upward, stopping at the fork (absolute depth of path[i]
	// is forkDepth+1+i; the fork itself belongs to the fork-path walk).
	cur := last
	for {
		abs := forkDepth + 1 + cur
		cs := q.t.chunkStart(abs)
		if cs <= forkDepth {
			// The chunk crosses the fork: its caches mix above-fork
			// content, so the below-fork remainder is read directly.
			for rel := 0; rel < cur; rel++ {
				if err := q.directAncestor(path, rel, leftSide); err != nil {
					return err
				}
			}
			return nil
		}
		if err := q.scanSideCaches(path[cur].Payload, leftSide); err != nil {
			return err
		}
		// Fully-inside siblings within the covered chunk continue into
		// their subtrees.
		for absJ := cs; absJ < abs; absJ++ {
			rel := absJ - forkDepth - 1
			if err := q.continueSibling(path, rel, leftSide); err != nil {
				return err
			}
		}
		bj := cs - 1
		if bj <= forkDepth {
			return nil
		}
		rel := bj - forkDepth - 1
		if err := q.directAncestor(path, rel, leftSide); err != nil {
			return err
		}
		cur = rel
	}
}

// scanSideCaches reads the corner/boundary node's ancestor and sibling
// caches for one side.
func (q *tsQuery) scanSideCaches(payload []byte, leftSide bool) error {
	if leftSide {
		if head, count := plList(payload, offAXD); count > 0 {
			if err := q.scanXDescFromA1(head); err != nil {
				return err
			}
		}
		if head, count := plList(payload, offRS); count > 0 {
			return q.scanYDescWindow(head)
		}
		return nil
	}
	if head, count := plList(payload, offAXA); count > 0 {
		if err := q.scanXAscToA2(head); err != nil {
			return err
		}
	}
	if head, count := plList(payload, offLS); count > 0 {
		return q.scanYDescWindow(head)
	}
	return nil
}

// directAncestor reads a path node's block directly and explores its
// window-side sibling.
func (q *tsQuery) directAncestor(path []skeletal.Node, rel int, leftSide bool) error {
	if err := q.scanBlockWindow(path[rel].Payload); err != nil {
		return err
	}
	if rel+1 >= len(path) {
		return nil
	}
	if leftSide {
		if path[rel+1].Ref == path[rel].Left && path[rel].Right.Valid() {
			return q.explore(path[rel].Right)
		}
		return nil
	}
	if path[rel+1].Ref == path[rel].Right && path[rel].Left.Valid() {
		return q.explore(path[rel].Left)
	}
	return nil
}

// continueSibling descends into a cached sibling's subtree when the sibling
// was entirely above b (its own points were served by the RS/LS cache).
func (q *tsQuery) continueSibling(path []skeletal.Node, rel int, leftSide bool) error {
	if rel+1 >= len(path) {
		return nil
	}
	var sibRef skeletal.NodeRef
	var sibMinY int64
	if leftSide {
		if path[rel+1].Ref != path[rel].Left || !path[rel].Right.Valid() {
			return nil
		}
		sibRef, sibMinY = path[rel].Right, plRightMinY(path[rel].Payload)
	} else {
		if path[rel+1].Ref != path[rel].Right || !path[rel].Left.Valid() {
			return nil
		}
		sibRef, sibMinY = path[rel].Left, plLeftMinY(path[rel].Payload)
	}
	if sibMinY < q.b {
		return nil
	}
	sib, err := q.w.Node(sibRef)
	if err != nil {
		return err
	}
	left, right := sib.Left, sib.Right
	if left.Valid() {
		if err := q.explore(left); err != nil {
			return err
		}
	}
	if right.Valid() {
		return q.explore(right)
	}
	return nil
}

// explore reports a subtree known to lie inside the x-window: scan the block
// above b and recurse while the node was entirely above b.
func (q *tsQuery) explore(ref skeletal.NodeRef) error {
	n, err := q.w.Node(ref)
	if err != nil {
		return err
	}
	// n.Payload aliases the walker's private immutable view buffer, which
	// outlives pool eviction — no defensive copy needed.
	payload := n.Payload
	left, right := n.Left, n.Right
	if err := q.scanBlockWindow(payload); err != nil {
		return err
	}
	if plMinY(payload) < q.b {
		return nil
	}
	if left.Valid() {
		if err := q.explore(left); err != nil {
			return err
		}
	}
	if right.Valid() {
		return q.explore(right)
	}
	return nil
}

// scanBlockWindow reads a node block, reporting points inside the query.
func (q *tsQuery) scanBlockWindow(payload []byte) error {
	head, count := plList(payload, offBlock)
	if count == 0 {
		return nil
	}
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if x := v.X(); x >= q.a1 && x <= q.a2 && v.Y() >= q.b {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// scanYDescWindow scans a y-descending chain while y >= b with the window
// filter; used for AY, RS and LS caches.
func (q *tsQuery) scanYDescWindow(head disk.PageID) error {
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if v.Y() < q.b {
			return false
		}
		if x := v.X(); x >= q.a1 && x <= q.a2 {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// scanXDescFromA1 scans an x-descending ancestor cache while x >= a1; every
// covered ancestor is above b, and below-fork a1-side ancestors lie at
// x <= a2, so the window filter only trims defensively.
func (q *tsQuery) scanXDescFromA1(head disk.PageID) error {
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		x := v.X()
		if x < q.a1 {
			return false
		}
		if x <= q.a2 && v.Y() >= q.b {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// scanXAscToA2 mirrors scanXDescFromA1 for the a2 side.
func (q *tsQuery) scanXAscToA2(head disk.PageID) error {
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		x := v.X()
		if x > q.a2 {
			return false
		}
		if x >= q.a1 && v.Y() >= q.b {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

func (q *tsQuery) account(pages, matched int) {
	q.st.ListPages += pages
	full := matched / q.t.b
	q.st.UsefulIOs += full
	q.st.WastefulIOs += pages - full
}
