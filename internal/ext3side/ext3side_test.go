package ext3side

import (
	"sort"
	"testing"
	"testing/quick"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := tr.Query(0, 10, 0)
	if err != nil || out != nil || st.Results != 0 {
		t.Fatalf("query on empty: %v %v %v", out, st, err)
	}
}

func TestInvertedWindow(t *testing.T) {
	pts := workload.UniformPoints(100, 1000, 1)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := tr.Query(500, 100, 0)
	if err != nil || out != nil {
		t.Fatalf("inverted window: %v %v", out, err)
	}
}

func TestQueryMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 10, 200, 3000, 20_000} {
		pts := workload.UniformPoints(n, 100_000, int64(n)+5)
		s := disk.MustStore(512)
		tr, err := Build(s, pts)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d", tr.Len())
		}
		for _, wf := range []float64{0.01, 0.2, 0.9} {
			for _, sel := range []float64{0.001, 0.05} {
				for _, q := range workload.ThreeSidedQueries(10, 100_000, wf, sel, 111) {
					got, st, err := tr.Query(q.A1, q.A2, q.B)
					if err != nil {
						t.Fatal(err)
					}
					want := inmem.ThreeSided(pts, q.A1, q.A2, q.B)
					if !samePoints(got, want) {
						t.Fatalf("n=%d window (%d,%d,%d): got %d want %d",
							n, q.A1, q.A2, q.B, len(got), len(want))
					}
					if st.Results != len(got) {
						t.Fatalf("stats results %d != %d", st.Results, len(got))
					}
				}
			}
		}
	}
}

func TestQueryEdgeWindows(t *testing.T) {
	pts := workload.UniformPoints(5000, 10_000, 113)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a1, a2, b int64 }{
		{-1 << 40, 1 << 40, -1 << 40}, // everything
		{0, 9_999, 0},                 // full domain
		{5_000, 5_000, 0},             // zero-width window
		{0, 9_999, 9_999},             // top stripe
		{0, 0, 0},                     // left edge
		{9_999, 9_999, 0},             // right edge
		{3_000, 7_000, 10_001},        // empty (b too high)
		{10_001, 10_002, 0},           // empty (window right of data)
	}
	for _, c := range cases {
		got, _, err := tr.Query(c.a1, c.a2, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if want := inmem.ThreeSided(pts, c.a1, c.a2, c.b); !samePoints(got, want) {
			t.Fatalf("window (%d,%d,%d): got %d want %d", c.a1, c.a2, c.b, len(got), len(want))
		}
	}
}

func TestQueryDuplicateCoordinates(t *testing.T) {
	var pts []record.Point
	for i := 0; i < 700; i++ {
		pts = append(pts, record.Point{X: int64(i % 7), Y: int64(i % 5), ID: uint64(i + 1)})
	}
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	for a1 := int64(-1); a1 <= 7; a1++ {
		for a2 := a1; a2 <= 7; a2++ {
			for b := int64(-1); b <= 6; b++ {
				got, _, err := tr.Query(a1, a2, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := inmem.ThreeSided(pts, a1, a2, b); !samePoints(got, want) {
					t.Fatalf("window (%d,%d,%d): got %d want %d", a1, a2, b, len(got), len(want))
				}
			}
		}
	}
}

func TestQueryProperty(t *testing.T) {
	f := func(raw []struct{ X, Y int16 }, a1, a2, b int16) bool {
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		pts := make([]record.Point, len(raw))
		for i, r := range raw {
			pts[i] = record.Point{X: int64(r.X), Y: int64(r.Y), ID: uint64(i + 1)}
		}
		s := disk.MustStore(512)
		tr, err := Build(s, pts)
		if err != nil {
			return false
		}
		got, _, err := tr.Query(int64(a1), int64(a2), int64(b))
		if err != nil {
			return false
		}
		return samePoints(got, inmem.ThreeSided(pts, int64(a1), int64(a2), int64(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}

func log2(n int) int {
	r := 0
	for v := 1; v < n; v *= 2 {
		r++
	}
	return r
}

// Theorems 3.3/4.5 (engineering rendition): queries cost
// O(log_B n + log B + t/B) worst case, near-optimal on benchmarks.
func TestQueryIOBound(t *testing.T) {
	const n = 50_000
	pts := workload.UniformPoints(n, 1_000_000, 127)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	lb := logB(n, b)
	for _, wf := range []float64{0.05, 0.3} {
		for _, sel := range []float64{0.001, 0.02} {
			for _, qy := range workload.ThreeSidedQueries(20, 1_000_000, wf, sel, 131) {
				s.ResetStats()
				got, st, err := tr.Query(qy.A1, qy.A2, qy.B)
				if err != nil {
					t.Fatal(err)
				}
				reads := int(s.Stats().Reads)
				// Two side walks + fork walk, each with per-chunk constants,
				// plus up to 2 log B direct blocks at fork-crossing chunks.
				bound := 12*lb + 4*log2(b) + 4*len(got)/b + 12
				if reads > bound {
					t.Fatalf("window (%d,%d,%d): %d reads for t=%d (bound %d) stats=%+v",
						qy.A1, qy.A2, qy.B, reads, len(got), bound, st)
				}
			}
		}
	}
}

// Space: O((n/B)·log B) pages, under the paper's O((n/B)·log^2 B) budget.
func TestSpaceBound(t *testing.T) {
	const n = 40_000
	pts := workload.UniformPoints(n, 1_000_000, 137)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	bound := 12 * (n/b + 1) * (log2(b) + 1)
	if got := tr.TotalPages(); got > bound {
		sk, blocks, caches := tr.SpacePages()
		t.Fatalf("pages=%d bound=%d (skel=%d blocks=%d caches=%d)", got, bound, sk, blocks, caches)
	}
	if s.NumPages() != tr.TotalPages() {
		t.Fatalf("store has %d pages, structure claims %d", s.NumPages(), tr.TotalPages())
	}
}
