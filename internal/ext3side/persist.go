package ext3side

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Meta is the reopen metadata of a 3-sided tree.
type Meta struct {
	N          int
	BlockPages int
	CachePages int
	Skel       skeletal.Meta
}

const metaMagic = uint32(0x74736431) // "tsd1"

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		N:          t.n,
		BlockPages: t.blockPages,
		CachePages: t.cachePages,
		Skel:       t.skel.Meta(),
	}
}

// Encode serializes the meta.
func (m Meta) Encode() []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.BlockPages))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.CachePages))
	return m.Skel.Append(hdr[:])
}

// DecodeMeta deserializes a meta blob produced by Encode.
func DecodeMeta(buf []byte) (Meta, error) {
	if len(buf) < 16 {
		return Meta{}, errors.New("ext3side: truncated meta")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return Meta{}, errors.New("ext3side: bad meta magic")
	}
	m := Meta{
		N:          int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		BlockPages: int(int32(binary.LittleEndian.Uint32(buf[8:]))),
		CachePages: int(int32(binary.LittleEndian.Uint32(buf[12:]))),
	}
	var err error
	m.Skel, _, err = skeletal.DecodeMeta(buf[16:])
	return m, err
}

// Reopen attaches to a previously built tree persisted on p.
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("ext3side: page size %d too small", p.PageSize())
	}
	if m.Skel.PayloadSize != payloadSize {
		return nil, fmt.Errorf("ext3side: payload size %d, want %d (format drift)", m.Skel.PayloadSize, payloadSize)
	}
	skel, err := skeletal.Reopen(p, m.Skel)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		pager:      p,
		skel:       skel,
		b:          b,
		n:          m.N,
		blockPages: m.BlockPages,
		cachePages: m.CachePages,
	}
	t.segLen = bits.Len(uint(b)) - 1
	if t.segLen < 1 {
		t.segLen = 1
	}
	return t, nil
}
