// Package ext3side implements an external priority search tree for 3-sided
// queries {a1 <= x <= a2, y >= b} — the problem of Theorems 3.3/4.5, which
// the paper motivates with indexing class hierarchies in object-oriented
// databases [KRV].
//
// The extended abstract states the 3-sided bounds but defers the
// construction to a full version that detailed it differently; this package
// implements the natural two-corner rendition (documented as deviation 1 in
// DESIGN.md):
//
//   - The query splits at the fork node, the deepest node whose x-split
//     lies inside [a1, a2]. Fork-path ancestors are served from per-chunk
//     AY caches (all chunk-ancestor points, y-descending): a scan reports
//     while y >= b with an x-window filter.
//   - Below the fork, the a1 side runs the 2-sided machinery of Theorem 3.2
//     with x-descending ancestor caches (AXD) and right-sibling caches (RS);
//     the a2 side runs its mirror image (AXA, LS). Chunks that would cross
//     the fork fall back to direct block reads — at most one chunk (log B
//     blocks) per side.
//
// Measured query cost is O(log_B n + t/B) on all benchmark workloads; the
// worst case is O(log_B n + log B + t/B + w/B) where w counts fork-ancestor
// points above b but outside the x-window — matching the [KRV] baseline
// bound even when the deviation terms bite. Storage is O((n/B)·log B)
// pages, under the paper's O((n/B)·log^2 B) budget.
package ext3side

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"pathcache/internal/disk"
	"pathcache/internal/pstcore"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Node payload layout (96 bytes):
//
//	0   blockHead/blockCount   this node's top-B points (y-descending)
//	12  minY       int64
//	20  leftMinY   int64   (MinInt64 when the child is absent)
//	28  rightMinY  int64
//	36  ayHead/ayCount    chunk ancestors, y-descending
//	48  axdHead/axdCount  chunk ancestors, x-descending
//	60  axaHead/axaCount  chunk ancestors, x-ascending
//	72  rsHead/rsCount    right-hanging chunk siblings, y-descending
//	84  lsHead/lsCount    left-hanging chunk siblings, y-descending
const payloadSize = 96

// List offsets within the payload.
const (
	offBlock = 0
	offAY    = 36
	offAXD   = 48
	offAXA   = 60
	offRS    = 72
	offLS    = 84
)

// Tree is a static external 3-sided search structure.
type Tree struct {
	pager  disk.Pager
	skel   *skeletal.Tree
	b      int
	segLen int
	n      int

	blockPages int
	cachePages int
}

// QueryStats profiles one 3-sided query.
type QueryStats struct {
	PathPages   int
	ListPages   int
	UsefulIOs   int
	WastefulIOs int
	Results     int
}

// Build constructs the structure over pts under disk.LayoutSorted. The
// input slice is not retained or modified.
func Build(p disk.Pager, pts []record.Point) (*Tree, error) {
	return BuildLayout(p, pts, disk.LayoutSorted)
}

// BuildLayout is Build with an explicit skeletal page layout.
func BuildLayout(p disk.Pager, pts []record.Point, layout disk.Layout) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("ext3side: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	t := &Tree{pager: p, b: b, n: len(pts)}
	t.segLen = bits.Len(uint(b)) - 1
	if t.segLen < 1 {
		t.segLen = 1
	}
	root := pstcore.Build(pstcore.SortedAsc(pts), b)
	bn, err := t.persist(root, 0, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	skel, err := skeletal.BuildLayout(p, bn, payloadSize, layout)
	if err != nil {
		return nil, err
	}
	t.skel = skel
	return t, nil
}

func (t *Tree) chunkStart(depth int) int {
	return (depth / t.segLen) * t.segLen
}

// persist writes node chains depth-first. ancestors[i] holds the points of
// the depth-i ancestor; rsibs[i]/lsibs[i] hold the right/left sibling
// hanging off the path at level i (nil when the path went the other way).
func (t *Tree) persist(n *pstcore.MemNode, depth int, ancestors, rsibs, lsibs [][]record.Point) (*skeletal.BuildNode, error) {
	if n == nil {
		return nil, nil
	}
	blockHead, pages, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(n.Pts))
	if err != nil {
		return nil, err
	}
	t.blockPages += pages

	payload := make([]byte, payloadSize)
	binary.LittleEndian.PutUint64(payload[offBlock:], uint64(blockHead))
	binary.LittleEndian.PutUint32(payload[offBlock+8:], uint32(len(n.Pts)))
	binary.LittleEndian.PutUint64(payload[12:], uint64(n.MinY))
	putChildMinY(payload[20:], n.Left)
	putChildMinY(payload[28:], n.Right)

	cs := t.chunkStart(depth)
	var aPts, rsPts, lsPts []record.Point
	for i := cs; i < depth; i++ {
		aPts = append(aPts, ancestors[i]...)
		if rsibs[i] != nil {
			rsPts = append(rsPts, rsibs[i]...)
		}
		if lsibs[i] != nil {
			lsPts = append(lsPts, lsibs[i]...)
		}
	}
	ay := append([]record.Point(nil), aPts...)
	pstcore.SortByYDesc(ay)
	if err := t.writeCache(payload[offAY:], ay); err != nil {
		return nil, err
	}
	axd := append([]record.Point(nil), aPts...)
	pstcore.SortByXDesc(axd)
	if err := t.writeCache(payload[offAXD:], axd); err != nil {
		return nil, err
	}
	pstcore.SortByXAsc(aPts)
	if err := t.writeCache(payload[offAXA:], aPts); err != nil {
		return nil, err
	}
	pstcore.SortByYDesc(rsPts)
	if err := t.writeCache(payload[offRS:], rsPts); err != nil {
		return nil, err
	}
	pstcore.SortByYDesc(lsPts)
	if err := t.writeCache(payload[offLS:], lsPts); err != nil {
		return nil, err
	}

	bn := &skeletal.BuildNode{Key: n.Split, Payload: payload}
	ancestors = append(ancestors, n.Pts)
	var leftPts, rightPts []record.Point
	if n.Left != nil {
		leftPts = n.Left.Pts
	}
	if n.Right != nil {
		rightPts = n.Right.Pts
	}
	if n.Left != nil {
		// Path goes left: the right child is a right-hanging sibling.
		bn.Left, err = t.persist(n.Left, depth+1, ancestors, append(rsibs, rightPts), append(lsibs, nil))
		if err != nil {
			return nil, err
		}
	}
	if n.Right != nil {
		// Path goes right: the left child is a left-hanging sibling.
		bn.Right, err = t.persist(n.Right, depth+1, ancestors, append(rsibs, nil), append(lsibs, leftPts))
		if err != nil {
			return nil, err
		}
	}
	return bn, nil
}

func (t *Tree) writeCache(buf []byte, pts []record.Point) error {
	head, pages, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(pts))
	if err != nil {
		return err
	}
	t.cachePages += pages
	binary.LittleEndian.PutUint64(buf[0:8], uint64(head))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(pts)))
	return nil
}

func putChildMinY(buf []byte, c *pstcore.MemNode) {
	v := int64(math.MinInt64)
	if c != nil {
		v = c.MinY
	}
	binary.LittleEndian.PutUint64(buf, uint64(v))
}

func plList(p []byte, off int) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[off:])), int(binary.LittleEndian.Uint32(p[off+8:]))
}
func plMinY(p []byte) int64      { return int64(binary.LittleEndian.Uint64(p[12:])) }
func plLeftMinY(p []byte) int64  { return int64(binary.LittleEndian.Uint64(p[20:])) }
func plRightMinY(p []byte) int64 { return int64(binary.LittleEndian.Uint64(p[28:])) }

// WithPager returns a read-only view of the tree whose queries run through
// p — the hook for per-operation I/O attribution via disk.WithCounter.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	c.skel = t.skel.WithPager(p)
	return &c
}

// Len reports the number of indexed points.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// Height reports the binary tree height.
func (t *Tree) Height() int { return t.skel.Height() }

// Layout reports the skeletal page layout the tree was built with.
func (t *Tree) Layout() disk.Layout { return t.skel.Layout() }

// SpacePages breaks down storage: skeleton, point blocks, caches.
func (t *Tree) SpacePages() (skeleton, blocks, caches int) {
	return t.skel.NumPages(), t.blockPages, t.cachePages
}

// TotalPages is the complete storage footprint in pages.
func (t *Tree) TotalPages() int {
	return t.skel.NumPages() + t.blockPages + t.cachePages
}

// Destroy frees every page the tree owns. Used by the dynamic wrapper's
// rebuilds; the traversal reads are charged like any rebuild I/O.
func (t *Tree) Destroy() error {
	if t.n == 0 {
		if t.skel != nil {
			return t.skel.Free()
		}
		return nil
	}
	w := t.skel.NewWalker()
	var free func(ref skeletal.NodeRef) error
	free = func(ref skeletal.NodeRef) error {
		if !ref.Valid() {
			return nil
		}
		n, err := w.Node(ref)
		if err != nil {
			return err
		}
		left, right := n.Left, n.Right
		for _, off := range []int{offBlock, offAY, offAXD, offAXA, offRS, offLS} {
			if h, c := plList(n.Payload, off); c > 0 {
				if err := disk.FreeChain(t.pager, h); err != nil {
					return err
				}
			}
		}
		if err := free(left); err != nil {
			return err
		}
		return free(right)
	}
	if err := free(t.skel.Root()); err != nil {
		return err
	}
	t.blockPages, t.cachePages, t.n = 0, 0, 0
	return t.skel.Free()
}
