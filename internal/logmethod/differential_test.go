package logmethod

import (
	"math/rand"
	"sort"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
)

// TestDifferentialVsInMem drives the logarithmic-method tree through seeded
// insert/delete/query interleavings and compares every 2-sided query against
// the brute-force in-memory oracle. The interleavings are long enough to
// force level merges, tombstone rewrites, and full compactions.
func TestDifferentialVsInMem(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		page int
		ops  int
	}{
		{seed: 7, page: 256, ops: 700},
		{seed: 8, page: 512, ops: 700},
		{seed: 9, page: 1024, ops: 400},
	} {
		tc := tc
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(tc.seed))
			tr, err := New(disk.MustStore(tc.page))
			if err != nil {
				t.Fatal(err)
			}
			var live []record.Point
			nextID := uint64(1)

			check := func(op int) {
				a, b := rng.Int63n(400), rng.Int63n(400)
				got, err := tr.Query(a, b)
				if err != nil {
					t.Fatalf("op %d query(%d,%d): %v", op, a, b, err)
				}
				want := inmem.TwoSided(live, a, b)
				sortPts := func(pts []record.Point) {
					sort.Slice(pts, func(i, j int) bool {
						if pts[i].X != pts[j].X {
							return pts[i].X < pts[j].X
						}
						if pts[i].Y != pts[j].Y {
							return pts[i].Y < pts[j].Y
						}
						return pts[i].ID < pts[j].ID
					})
				}
				sortPts(got)
				sortPts(want)
				if len(got) != len(want) {
					t.Fatalf("op %d query(%d,%d): %d results, oracle %d", op, a, b, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("op %d query(%d,%d): result %d = %+v, oracle %+v", op, a, b, i, got[i], want[i])
					}
				}
			}

			for op := 0; op < tc.ops; op++ {
				switch r := rng.Intn(10); {
				case r < 6: // insert
					p := record.Point{X: rng.Int63n(400), Y: rng.Int63n(400), ID: nextID}
					nextID++
					if err := tr.Insert(p); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					live = append(live, p)
				case r < 8 && len(live) > 0: // delete
					i := rng.Intn(len(live))
					if err := tr.Delete(live[i]); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				default:
					check(op)
				}
				if tr.Len() != len(live) {
					t.Fatalf("op %d: Len %d, oracle %d", op, tr.Len(), len(live))
				}
			}
			check(tc.ops)
		})
	}
}
