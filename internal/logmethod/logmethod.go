// Package logmethod implements the folklore dynamization baseline the
// paper's Section 5 is competing against: the logarithmic method of Bentley
// and Saxe. The point set is partitioned into O(log(n/B)) static Segmented
// trees of geometrically increasing sizes; an insert merges the maximal
// prefix of occupied levels, and a query must run against *every* level.
//
// That per-level query tax is exactly what Theorem 5.1's buffered structure
// avoids: here a 2-sided query costs O(log(n/B)·log_B n + t/B) I/Os versus
// the paper's O(log_B n + t/B). Experiment E4 prints both side by side.
// Deletes are handled by bounded tombstoning with periodic global rebuilds,
// mirroring the dyn3side rendition so the comparison is about queries.
package logmethod

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/extpst"
	"pathcache/internal/record"
)

// Tree is a dynamic 2-sided index built from static levels. Not safe for
// concurrent use.
type Tree struct {
	pager disk.Pager
	b     int
	n     int // live points (inserts minus deletes)

	levels []*extpst.Tree // levels[i] holds at most B·2^i points, or nil

	tombs    map[record.Point]bool
	tombHead disk.PageID // persisted tombstone chain (charged on queries)
	inserted int         // points across all levels (includes tombstoned)
}

// New creates an empty logarithmic-method index on p.
func New(p disk.Pager) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("logmethod: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	return &Tree{pager: p, b: b, tombs: map[record.Point]bool{}, tombHead: disk.InvalidPage}, nil
}

// Len reports the number of live points.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// Levels reports how many levels are occupied — the query multiplier.
func (t *Tree) Levels() int {
	c := 0
	for _, lv := range t.levels {
		if lv != nil {
			c++
		}
	}
	return c
}

// Insert adds a point, cascading a merge through the occupied prefix of
// levels (amortized O((log(n/B)/B)·log B) I/Os).
func (t *Tree) Insert(p record.Point) error {
	carry := []record.Point{p}
	level := 0
	for {
		if level >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		if t.levels[level] == nil {
			break
		}
		pts, err := t.levels[level].Points()
		if err != nil {
			return err
		}
		carry = append(carry, pts...)
		if err := t.levels[level].Destroy(); err != nil {
			return err
		}
		t.levels[level] = nil
		level++
	}
	tr, err := extpst.Build(t.pager, carry, extpst.Segmented)
	if err != nil {
		return err
	}
	t.levels[level] = tr
	t.n++
	t.inserted++
	return nil
}

// tombCap bounds pending tombstones to B·ceil(log_B n) so the per-query
// tombstone read stays within the search term.
func (t *Tree) tombCap() int {
	lb := 1
	for v := 1; v < t.n || v < t.b; v *= t.b {
		lb++
	}
	return t.b * lb
}

// Delete tombstones a point, rebuilding globally when tombstones pile up.
// The in-memory state mutates only after the chain rewrite succeeds, so a
// failed rewrite reports an error with the delete not applied instead of
// leaving the live count out of sync with the persisted chain.
func (t *Tree) Delete(p record.Point) error {
	t.tombs[p] = true
	if err := t.rewriteTombs(); err != nil {
		delete(t.tombs, p)
		return err
	}
	t.n--
	if len(t.tombs) >= t.tombCap() {
		return t.compact()
	}
	return nil
}

// rewriteTombs re-persists the tombstone chain: write the replacement
// first, free the superseded chain only once the replacement exists (Free
// destroys page content, so the old order — free, then write — lost the
// chain whenever the write failed).
func (t *Tree) rewriteTombs() error {
	head := disk.InvalidPage
	if len(t.tombs) > 0 {
		raw := make([]byte, 0, len(t.tombs)*record.PointSize)
		for p := range t.tombs {
			var rec [record.PointSize]byte
			p.Encode(rec[:])
			raw = append(raw, rec[:]...)
		}
		h, _, err := disk.WriteChain(t.pager, record.PointSize, raw)
		if err != nil {
			return err
		}
		head = h
	}
	old := t.tombHead
	t.tombHead = head
	if old != disk.InvalidPage {
		if err := disk.FreeChain(t.pager, old); err != nil {
			return err
		}
	}
	return nil
}

// compact rebuilds a single level from all live points. The rebuild happens
// before anything is destroyed: an error while reading or building leaves
// the old levels fully intact, and an error while releasing them surfaces
// only after the rebuilt state is installed.
func (t *Tree) compact() error {
	var live []record.Point
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		pts, err := lv.Points()
		if err != nil {
			return err
		}
		for _, p := range pts {
			if !t.tombs[p] {
				live = append(live, p)
			}
		}
	}
	var tr *extpst.Tree
	if len(live) > 0 {
		var err error
		tr, err = extpst.Build(t.pager, live, extpst.Segmented)
		if err != nil {
			return err
		}
	}
	old := t.levels
	t.levels = nil
	t.tombs = map[record.Point]bool{}
	t.inserted = len(live)
	if tr != nil {
		// Place the rebuilt structure at the smallest level that fits it.
		level := 0
		for cap := t.b; cap < len(live); cap *= 2 {
			level++
		}
		for len(t.levels) <= level {
			t.levels = append(t.levels, nil)
		}
		t.levels[level] = tr
	}
	if err := t.rewriteTombs(); err != nil {
		return err
	}
	for _, lv := range old {
		if lv == nil {
			continue
		}
		if err := lv.Destroy(); err != nil {
			return err
		}
	}
	return nil
}

// Query runs the 2-sided query against every level and filters tombstones —
// the per-level tax the paper's dynamic structure eliminates.
func (t *Tree) Query(a, b int64) ([]record.Point, error) {
	var out []record.Point
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		pts, _, err := lv.Query(a, b)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	if len(t.tombs) > 0 {
		// Charge the tombstone chain; the mirror filters.
		if _, err := disk.ScanChain(t.pager, record.PointSize, t.tombHead, func([]byte) bool { return true }); err != nil {
			return nil, err
		}
		kept := out[:0]
		for _, p := range out {
			if !t.tombs[p] {
				kept = append(kept, p)
			}
		}
		out = kept
	}
	return out, nil
}

// TotalPages reports the storage footprint when the pager is a *Store.
func (t *Tree) TotalPages() int {
	if s, ok := t.pager.(*disk.Store); ok {
		return s.NumPages()
	}
	return -1
}
