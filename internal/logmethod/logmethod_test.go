package logmethod

import (
	"math/rand"
	"sort"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Query(0, 0)
	if err != nil || out != nil {
		t.Fatalf("empty query: %v %v", out, err)
	}
}

func TestMixedWorkloadMatchesOracle(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1301))
	live := map[record.Point]bool{}
	nextID := uint64(1)
	for step := 0; step < 3000; step++ {
		r := rng.Float64()
		switch {
		case r < 0.6 || len(live) == 0:
			p := record.Point{X: rng.Int63n(50_000), Y: rng.Int63n(50_000), ID: nextID}
			nextID++
			if err := tr.Insert(p); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			live[p] = true
		case r < 0.8:
			var victim record.Point
			k := rng.Intn(len(live))
			for p := range live {
				if k == 0 {
					victim = p
					break
				}
				k--
			}
			if err := tr.Delete(victim); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(live, victim)
		default:
			a, b := rng.Int63n(55_000)-2_000, rng.Int63n(55_000)-2_000
			got, err := tr.Query(a, b)
			if err != nil {
				t.Fatalf("step %d query: %v", step, err)
			}
			ls := make([]record.Point, 0, len(live))
			for p := range live {
				ls = append(ls, p)
			}
			if want := inmem.TwoSided(ls, a, b); !samePoints(got, want) {
				t.Fatalf("step %d query (%d,%d): got %d want %d (n=%d)",
					step, a, b, len(got), len(want), len(live))
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len=%d oracle=%d", tr.Len(), len(live))
	}
}

// The defining property: query cost scales with the number of occupied
// levels, unlike the paper's dynamic structure.
func TestQueryCostScalesWithLevels(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.UniformPoints(20_000, 1_000_000, 1303)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Levels() < 2 {
		t.Fatalf("only %d levels occupied", tr.Levels())
	}
	var reads int64
	qs := workload.TwoSidedQueries(30, 1_000_000, 0.0005, 1305)
	for _, q := range qs {
		s.ResetStats()
		if _, err := tr.Query(q.A, q.B); err != nil {
			t.Fatal(err)
		}
		reads += s.Stats().Reads
	}
	avg := float64(reads) / float64(len(qs))
	// Each occupied level costs at least its skeletal descent.
	if avg < float64(tr.Levels()) {
		t.Fatalf("avg %.1f reads over %d levels: level tax missing?", avg, tr.Levels())
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.UniformPoints(3_000, 100_000, 1307)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	peak := s.NumPages()
	for _, p := range pts {
		if err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Query(-1<<40, -1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || tr.Len() != 0 {
		t.Fatalf("leftovers: %d points, Len=%d", len(got), tr.Len())
	}
	if s.NumPages() > peak/4 {
		t.Fatalf("space not reclaimed: %d of %d pages", s.NumPages(), peak)
	}
}

// Injected I/O failures surface as errors, never panics.
func TestFaultInjection(t *testing.T) {
	fp := disk.NewFaultPager(disk.MustStore(512), 1<<40)
	tr, err := New(fp)
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.UniformPoints(1_000, 10_000, 1309)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	fp.SetBudget(0)
	if err := tr.Insert(pts[0]); err == nil {
		t.Fatal("starved insert succeeded")
	}
	if _, err := tr.Query(0, 0); err == nil {
		t.Fatal("starved query succeeded")
	}
}
