package shard

import "sync"

// Shard is one routed shard as the public layer sees it: the file name the
// map records plus an opaque reference to the owner's per-shard object (the
// public layer stores its copy-on-write index handle there; this package
// never looks inside).
type Shard struct {
	File string
	Ref  any
}

// Router is the installed routing state: the shard slice and split keys of
// the currently committed map epoch. Readers take a lock-free snapshot of
// the slices and plan against it for the whole operation; a split or
// rebalance builds fresh slices and installs them wholesale under the lock.
// The snapshotimmutable analyzer enforces that nothing mutates the
// published slices in place — the same copy-on-write discipline the write
// tier uses for its level snapshots (DESIGN.md §11).
type Router struct {
	mu    sync.RWMutex
	epoch uint64
	seq   uint64
	//pcvet:snapshot
	shards []Shard
	//pcvet:snapshot
	splits []int64
}

// NewRouter returns a router serving the given initial state.
func NewRouter(shards []Shard, splits []int64, epoch, seq uint64) *Router {
	return &Router{epoch: epoch, seq: seq, shards: shards, splits: splits}
}

// Snapshot returns the installed shard slice, split keys and epoch. The
// returned slices are shared with every other snapshot of the same epoch
// and must be treated as immutable.
func (r *Router) Snapshot() (shards []Shard, splits []int64, epoch uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards, r.splits, r.epoch
}

// Install publishes a new routing state wholesale. The caller passes fresh
// slices it will never mutate again; snapshots taken before the install
// keep serving the previous epoch.
func (r *Router) Install(shards []Shard, splits []int64, epoch, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shards = shards
	r.splits = splits
	r.epoch = epoch
	r.seq = seq
}

// Epoch reports the installed epoch.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Seq reports the installed next-file sequence number.
func (r *Router) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}
