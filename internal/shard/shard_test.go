package shard

import (
	"errors"
	"reflect"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
)

func TestLocateAndRanges(t *testing.T) {
	splits := []int64{10, 20, 30}
	cases := []struct {
		k    int64
		want int
	}{{-100, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {29, 2}, {30, 3}, {100, 3}}
	for _, c := range cases {
		if got := Locate(splits, c.k); got != c.want {
			t.Errorf("Locate(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	if from, to := Overlap(splits, 5, 25); from != 0 || to != 3 {
		t.Errorf("Overlap(5,25) = [%d,%d), want [0,3)", from, to)
	}
	if from, to := Overlap(splits, 10, 10); from != 1 || to != 2 {
		t.Errorf("Overlap(10,10) = [%d,%d), want [1,2)", from, to)
	}
	if from, to := Overlap(splits, 25, 5); from != to {
		t.Errorf("inverted Overlap selects [%d,%d), want empty", from, to)
	}
	if got := Suffix(splits, 20); got != 2 {
		t.Errorf("Suffix(20) = %d, want 2", got)
	}
	if got := Prefix(splits, 9); got != 1 {
		t.Errorf("Prefix(9) = %d, want 1", got)
	}
	if got := Locate(nil, 7); got != 0 {
		t.Errorf("Locate(nil, 7) = %d, want 0", got)
	}
}

func TestSplitKeysQuantiles(t *testing.T) {
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
	}
	splits := SplitKeys(keys, 4)
	if want := []int64{25, 50, 75}; !reflect.DeepEqual(splits, want) {
		t.Fatalf("SplitKeys = %v, want %v", splits, want)
	}
	// A fully concentrated distribution yields no usable split.
	same := []int64{7, 7, 7, 7}
	if splits := SplitKeys(same, 3); len(splits) != 0 {
		t.Fatalf("SplitKeys over equal keys = %v, want none", splits)
	}
}

func TestMapValidate(t *testing.T) {
	good := &Map{Kind: 1, Splits: []int64{5}, Files: []string{"a.pc", "b.pc"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	bad := []*Map{
		{Kind: 1},
		{Kind: 1, Files: []string{"a.pc", "b.pc"}},
		{Kind: 1, Splits: []int64{5, 5}, Files: []string{"a", "b", "c"}},
		{Kind: 1, Splits: []int64{5}, Files: []string{"a.pc", "a.pc"}},
		{Kind: Kind, Splits: []int64{5}, Files: []string{"a.pc", "b.pc"}},
		{Kind: 0, Files: []string{"a.pc"}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad map %d accepted", i)
		}
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := &Map{
		Epoch:  7,
		Seq:    11,
		Kind:   3,
		Base:   0,
		Splits: []int64{-50, 0, 9000},
		Files:  []string{"shard-0000.pc", "shard-0001.pc", "shard-0002.pc", "shard-0003.pc"},
	}
	got, err := decodeMap(encodeMap(m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	// Truncations and bit flips must surface as corruption, not bad maps.
	raw := encodeMap(m)
	for _, cut := range []int{1, 4, 12, len(raw) - 1} {
		if _, err := decodeMap(raw[:cut]); !errors.Is(err, disk.ErrCorrupt) {
			t.Errorf("decode of %d-byte prefix: err = %v, want ErrCorrupt", cut, err)
		}
	}
	flipped := append([]byte(nil), raw...)
	flipped[0] ^= 0xff
	if _, err := decodeMap(flipped); !errors.Is(err, disk.ErrCorrupt) {
		t.Errorf("decode with bad magic: err = %v, want ErrCorrupt", err)
	}
}

func testBackend(t *testing.T) *engine.Backend {
	t.Helper()
	be, err := engine.New(engine.Config{File: disk.NewMemFile(), PageSize: 256})
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	return be
}

func TestSaveLoadFlip(t *testing.T) {
	be := testBackend(t)
	defer be.Close()

	if _, err := Load(be); !errors.Is(err, engine.ErrNoIndex) {
		t.Fatalf("Load before any Save: err = %v, want ErrNoIndex", err)
	}

	a := &Map{Epoch: 1, Seq: 2, Kind: 1, Splits: []int64{100}, Files: []string{"shard-0000.pc", "shard-0001.pc"}}
	if err := Save(be, a); err != nil {
		t.Fatalf("save a: %v", err)
	}
	got, err := Load(be)
	if err != nil {
		t.Fatalf("load a: %v", err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("load a mismatch: %+v", got)
	}

	// The second save exercises the flip + free-old path; the loadable map
	// must be the new epoch and the store must not leak the old chain.
	before := be.NumPages()
	b := a.Clone()
	b.Epoch, b.Seq = 2, 4
	b.Splits = []int64{100, 200}
	b.Files = append(b.Files, "shard-0002.pc")
	if err := Save(be, b); err != nil {
		t.Fatalf("save b: %v", err)
	}
	got, err = Load(be)
	if err != nil {
		t.Fatalf("load b: %v", err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("load b mismatch: %+v", got)
	}
	if after := be.NumPages(); after > before+2 {
		t.Fatalf("map rewrite leaked pages: %d -> %d live", before, after)
	}

	if err := Save(be, &Map{Kind: 1}); err == nil {
		t.Fatal("saving an invalid map succeeded")
	}
}

func TestRouterSnapshotInstall(t *testing.T) {
	r := NewRouter([]Shard{{File: "a"}, {File: "b"}}, []int64{10}, 1, 2)
	shards, splits, epoch := r.Snapshot()
	if len(shards) != 2 || len(splits) != 1 || epoch != 1 {
		t.Fatalf("snapshot = %v %v %d", shards, splits, epoch)
	}
	r.Install([]Shard{{File: "a"}, {File: "c"}, {File: "d"}}, []int64{10, 20}, 2, 4)
	if shards2, _, epoch2 := r.Snapshot(); len(shards2) != 3 || epoch2 != 2 {
		t.Fatalf("post-install snapshot = %v %d", shards2, epoch2)
	}
	// The pre-install snapshot is untouched.
	if len(shards) != 2 || shards[1].File != "b" {
		t.Fatalf("old snapshot mutated: %v", shards)
	}
	if r.Seq() != 4 || r.Epoch() != 2 {
		t.Fatalf("seq/epoch = %d/%d", r.Seq(), r.Epoch())
	}
}
