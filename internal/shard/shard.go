// Package shard is the horizontal scale-out core: a range-partitioned key
// space over N independent engine instances, a crash-safe shard map
// persisted with the §8 write-all-new -> flip -> free-old commit
// discipline, and the router state the public scatter-gather layer plans
// sub-queries against.
//
// The package deliberately sits below the public pathcache package: it
// knows key ranges, files and the manifest encoding, but nothing about the
// query structures. The public layer owns the per-shard index handles and
// the result merge; this package answers exactly one question per
// operation — which shards can hold a matching record — so every pruned
// sub-query still runs against its kind's own engine, pool, metric
// registry and theorem-bound sentinels.
package shard

import (
	"fmt"
	"sort"
)

// Kind is the registry kind byte the shard-map manifest file records, and
// KindName its registry name. The public layer registers the descriptor;
// this package only stamps the byte into the metadata page.
const Kind byte = 8

// KindName is the shard router's registry name.
const KindName = "shard"

// MapFileName is the shard-map manifest file inside a sharded store
// directory. The per-shard index files sit beside it under the names the
// map records.
const MapFileName = "shardmap.pc"

// MaxShards bounds a decoded map; a manifest naming more shards than this
// is corrupt, not ambitious.
const MaxShards = 4096

// Map is the decoded shard map: the range partition of the key space and
// the shard file behind each range. Shard i owns routing keys k with
// Splits[i-1] <= k < Splits[i] (the first shard is unbounded below, the
// last unbounded above), so len(Splits) == len(Files)-1 and the split keys
// ascend strictly.
type Map struct {
	// Epoch counts committed map flips; every split or rebalance bumps it.
	Epoch uint64
	// Seq is the next shard-file sequence number, so rebuilt shards get
	// fresh names and a crash between flip and old-file removal leaves only
	// orphans, never a name collision.
	Seq uint64
	// Kind is the content kind byte every shard file holds (one of the
	// registered index kinds, never Kind itself).
	Kind byte
	// Base is the LSM base kind byte when Kind is the write tier, else 0.
	Base byte
	// Splits are the N-1 strictly ascending split keys.
	Splits []int64
	// Files are the N shard file names, relative to the store directory.
	Files []string
}

// NumShards reports the number of shards the map partitions the key space
// into.
func (m *Map) NumShards() int { return len(m.Files) }

// Validate checks the structural invariants every committed map holds.
func (m *Map) Validate() error {
	if len(m.Files) == 0 {
		return fmt.Errorf("shard: map names no shard files")
	}
	if len(m.Files) > MaxShards {
		return fmt.Errorf("shard: map names %d shards, max %d", len(m.Files), MaxShards)
	}
	if len(m.Splits) != len(m.Files)-1 {
		return fmt.Errorf("shard: %d split keys for %d shards, want %d", len(m.Splits), len(m.Files), len(m.Files)-1)
	}
	for i := 1; i < len(m.Splits); i++ {
		if m.Splits[i-1] >= m.Splits[i] {
			return fmt.Errorf("shard: split keys not strictly ascending at %d (%d >= %d)", i, m.Splits[i-1], m.Splits[i])
		}
	}
	seen := make(map[string]bool, len(m.Files))
	for i, f := range m.Files {
		if f == "" {
			return fmt.Errorf("shard: shard %d has an empty file name", i)
		}
		if seen[f] {
			return fmt.Errorf("shard: duplicate shard file %q", f)
		}
		seen[f] = true
	}
	if m.Kind == 0 || m.Kind == Kind {
		return fmt.Errorf("shard: map records invalid content kind %d", m.Kind)
	}
	return nil
}

// Clone deep-copies the map, so a caller can derive the next epoch without
// touching the installed one.
func (m *Map) Clone() *Map {
	out := *m
	out.Splits = append([]int64(nil), m.Splits...)
	out.Files = append([]string(nil), m.Files...)
	return &out
}

// Locate returns the shard owning routing key k: the number of split keys
// <= k. With splits [10, 20], key 9 routes to shard 0, key 10 to shard 1
// and key 25 to shard 2.
func Locate(splits []int64, k int64) int {
	return sort.Search(len(splits), func(i int) bool { return splits[i] > k })
}

// Overlap returns the half-open shard range [from, to) whose key ranges
// intersect the closed key interval [lo, hi]; an inverted interval selects
// nothing.
func Overlap(splits []int64, lo, hi int64) (from, to int) {
	if lo > hi {
		return 0, 0
	}
	return Locate(splits, lo), Locate(splits, hi) + 1
}

// Suffix returns the first shard whose range intersects [lo, +inf); every
// shard from it to the last can hold a matching key.
func Suffix(splits []int64, lo int64) int { return Locate(splits, lo) }

// Prefix returns the shard range end (exclusive) for (-inf, hi]: shards
// [0, Prefix) can hold a matching key.
func Prefix(splits []int64, hi int64) int { return Locate(splits, hi) + 1 }

// SplitKeys computes nshards-1 ascending split keys partitioning the given
// routing keys into near-equal quantiles. Duplicate quantile keys collapse,
// so the result can be shorter than requested when the key distribution is
// too concentrated; the caller sizes the shard count off the returned
// slice. keys is sorted in place.
func SplitKeys(keys []int64, nshards int) []int64 {
	if nshards <= 1 || len(keys) == 0 {
		return nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	splits := make([]int64, 0, nshards-1)
	for i := 1; i < nshards; i++ {
		k := keys[i*len(keys)/nshards]
		if len(splits) > 0 && splits[len(splits)-1] >= k {
			continue
		}
		if k == keys[0] {
			// A split at the minimum key would leave shard 0 empty.
			continue
		}
		splits = append(splits, k)
	}
	return splits
}
