package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
)

// The shard map persists exactly like the write tier's manifest
// (internal/lsm/manifest.go, DESIGN.md §8/§11): the encoded map is chunked
// into a chain of fresh pages, and the commit point is the engine metadata
// flip installing a fixed-width blob {magic, content kind, chain head,
// byte length, CRC}. The chain the superseded map used is freed only after
// the flip, so a crash on either side recovers a committed map — the old
// one before the flip landed, the new one after — and a torn write
// surfaces as a checksum error, never as a partial partition. The
// commitprotocol analyzer enforces the ordering on this package.

// mapMagic and mapMetaMagic version the two encodings.
const (
	mapMagic     = 0x3170616d // "map1"
	mapMetaMagic = 0x4d647273 // "srdM"
)

// blobRec is the record width the map chain is chunked into.
const blobRec = 8

// castagnoli matches the FileStore's checksum polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeBlobChain chunks raw into a chain of blobRec-wide records, padding
// the tail chunk with zeros.
func writeBlobChain(p disk.Pager, raw []byte) (disk.PageID, error) {
	w, err := disk.NewChainWriter(p, blobRec)
	if err != nil {
		return disk.InvalidPage, err
	}
	var chunk [blobRec]byte
	for off := 0; off < len(raw); off += blobRec {
		for i := range chunk {
			chunk[i] = 0
		}
		copy(chunk[:], raw[off:])
		if err := w.Append(chunk[:]); err != nil {
			return disk.InvalidPage, err
		}
	}
	head, _, _, err := w.Close()
	return head, err
}

// readBlobChain reads a blob chain back and truncates to size bytes.
func readBlobChain(p disk.Pager, head disk.PageID, size int) ([]byte, error) {
	raw := make([]byte, 0, size+blobRec)
	_, err := disk.ScanChain(p, blobRec, head, func(rec []byte) bool {
		raw = append(raw, rec...)
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(raw) < size {
		return nil, fmt.Errorf("shard: map chain holds %d bytes, need %d: %w", len(raw), size, disk.ErrCorrupt)
	}
	return raw[:size], nil
}

func putU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func putU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// encodeMap serializes the map.
func encodeMap(m *Map) []byte {
	buf := make([]byte, 0, 64+16*len(m.Files))
	buf = putU32(buf, mapMagic)
	buf = putU64(buf, m.Epoch)
	buf = putU64(buf, m.Seq)
	buf = append(buf, m.Kind, m.Base)
	buf = putU32(buf, uint32(len(m.Files)))
	for _, k := range m.Splits {
		buf = putU64(buf, uint64(k))
	}
	for _, f := range m.Files {
		buf = putU32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	return buf
}

// mapReader decodes with bounds checking; any overrun marks corruption.
type mapReader struct {
	buf []byte
	off int
	err error
}

func (r *mapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("shard: map truncated at offset %d: %w", r.off, disk.ErrCorrupt)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *mapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *mapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// decodeMap parses raw into a validated map.
func decodeMap(raw []byte) (*Map, error) {
	r := &mapReader{buf: raw}
	if magic := r.u32(); r.err == nil && magic != mapMagic {
		return nil, fmt.Errorf("shard: bad map magic %#x: %w", magic, disk.ErrCorrupt)
	}
	m := &Map{}
	m.Epoch = r.u64()
	m.Seq = r.u64()
	if b := r.take(2); b != nil {
		m.Kind, m.Base = b[0], b[1]
	}
	n := int(r.u32())
	if r.err == nil && (n <= 0 || n > MaxShards) {
		return nil, fmt.Errorf("shard: map names %d shards: %w", n, disk.ErrCorrupt)
	}
	for i := 0; i < n-1 && r.err == nil; i++ {
		m.Splits = append(m.Splits, int64(r.u64()))
	}
	for i := 0; i < n && r.err == nil; i++ {
		nameLen := int(r.u32())
		if b := r.take(nameLen); b != nil {
			m.Files = append(m.Files, string(b))
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, disk.ErrCorrupt)
	}
	return m, nil
}

// metaBlobSize is the fixed width of the engine metadata blob: magic,
// content kind, chain head, map length, map CRC.
const metaBlobSize = 4 + 1 + 8 + 4 + 4

// encodeMetaBlob builds the metadata blob committing a map chain.
func encodeMetaBlob(contentKind byte, head disk.PageID, mapLen int, sum uint32) []byte {
	buf := make([]byte, 0, metaBlobSize)
	buf = putU32(buf, mapMetaMagic)
	buf = append(buf, contentKind)
	buf = putU64(buf, uint64(head))
	buf = putU32(buf, uint32(mapLen))
	buf = putU32(buf, sum)
	return buf
}

// metaBlob is the decoded engine metadata blob.
type metaBlob struct {
	contentKind byte
	head        disk.PageID
	mapLen      int
	sum         uint32
}

func decodeMetaBlob(blob []byte) (metaBlob, error) {
	if len(blob) != metaBlobSize {
		return metaBlob{}, fmt.Errorf("shard: metadata blob is %d bytes, want %d: %w", len(blob), metaBlobSize, disk.ErrCorrupt)
	}
	if magic := binary.LittleEndian.Uint32(blob[0:4]); magic != mapMetaMagic {
		return metaBlob{}, fmt.Errorf("shard: bad metadata magic %#x: %w", magic, disk.ErrCorrupt)
	}
	return metaBlob{
		contentKind: blob[4],
		head:        disk.PageID(binary.LittleEndian.Uint64(blob[5:13])),
		mapLen:      int(binary.LittleEndian.Uint32(blob[13:17])),
		sum:         binary.LittleEndian.Uint32(blob[17:21]),
	}, nil
}

// Save commits m to the shard-map backend with the write-all-new -> flip ->
// free-old discipline: the encoded map lands in a fresh chain, the metadata
// flip (ReplaceMeta: pool flush, double-buffered superblock write, sync)
// publishes it atomically, and only then is the superseded map's chain
// freed. A crash anywhere leaves the previously committed map (or, before
// the first commit, ErrNoIndex) loadable.
func Save(be *engine.Backend, m *Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	oldHead := disk.InvalidPage
	if kind, blob, err := be.ReadKind(); err == nil && kind == Kind {
		if mb, err := decodeMetaBlob(blob); err == nil {
			oldHead = mb.head
		}
	}
	raw := encodeMap(m)
	head, err := writeBlobChain(be.Pager(), raw)
	if err != nil {
		return fmt.Errorf("shard: writing map chain: %w", err)
	}
	if head == disk.InvalidPage {
		return fmt.Errorf("shard: empty map encoding")
	}
	sum := crc32.Checksum(raw, castagnoli)
	if err := be.ReplaceMeta(Kind, encodeMetaBlob(m.Kind, head, len(raw), sum)); err != nil {
		return fmt.Errorf("shard: committing map: %w", err)
	}
	if oldHead != disk.InvalidPage {
		if err := disk.FreeChain(be.Pager(), oldHead); err != nil {
			return fmt.Errorf("shard: freeing superseded map chain: %w", err)
		}
	}
	return nil
}

// Load reads the committed map from the shard-map backend. A file whose
// build never committed surfaces engine.ErrNoIndex; a torn or inconsistent
// image fails with an error wrapping disk.ErrCorrupt.
func Load(be *engine.Backend) (*Map, error) {
	blob, err := be.ReadMeta(Kind)
	if err != nil {
		return nil, err
	}
	return LoadBlob(be, blob)
}

// LoadBlob decodes and validates the map a metadata blob points at — the
// registered-opener path, where the engine already read the blob.
func LoadBlob(be *engine.Backend, blob []byte) (*Map, error) {
	mb, err := decodeMetaBlob(blob)
	if err != nil {
		return nil, err
	}
	if mb.mapLen <= 0 {
		return nil, fmt.Errorf("shard: metadata names a %d-byte map: %w", mb.mapLen, disk.ErrCorrupt)
	}
	raw, err := readBlobChain(be.Pager(), mb.head, mb.mapLen)
	if err != nil {
		return nil, fmt.Errorf("shard: reading map chain: %w", err)
	}
	if sum := crc32.Checksum(raw, castagnoli); sum != mb.sum {
		return nil, fmt.Errorf("shard: map checksum mismatch (%#x != %#x): %w", sum, mb.sum, disk.ErrCorrupt)
	}
	m, err := decodeMap(raw)
	if err != nil {
		return nil, err
	}
	if m.Kind != mb.contentKind {
		return nil, fmt.Errorf("shard: map content kind %d != metadata kind %d: %w", m.Kind, mb.contentKind, disk.ErrCorrupt)
	}
	return m, nil
}
