package pstcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathcache/internal/record"
)

func randomPoints(n int, seed int64) []record.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]record.Point, n)
	for i := range pts {
		pts[i] = record.Point{X: rng.Int63n(1000), Y: rng.Int63n(1000), ID: uint64(i + 1)}
	}
	return pts
}

// checkInvariants verifies the PST structure: node capacity, heap order on
// y, x-partition by the split point, and that every input point appears
// exactly once.
func checkInvariants(t *testing.T, root *MemNode, b int, want int) {
	t.Helper()
	seen := map[record.Point]bool{}
	var walk func(n *MemNode, maxY int64)
	walk = func(n *MemNode, maxY int64) {
		if n == nil {
			return
		}
		if len(n.Pts) == 0 {
			t.Fatal("node with no points")
		}
		if len(n.Pts) > b {
			t.Fatalf("node holds %d > b=%d points", len(n.Pts), b)
		}
		for i, p := range n.Pts {
			if p.Y > maxY {
				t.Fatalf("heap violation: point %v above parent min %d", p, maxY)
			}
			if i > 0 && n.Pts[i-1].Y < p.Y {
				t.Fatalf("node points not y-descending at %d", i)
			}
			if seen[p] {
				t.Fatalf("point %v duplicated", p)
			}
			seen[p] = true
		}
		if n.MinY != n.Pts[len(n.Pts)-1].Y {
			t.Fatalf("MinY %d != last point y %d", n.MinY, n.Pts[len(n.Pts)-1].Y)
		}
		if (n.Left != nil || n.Right != nil) && len(n.Pts) != b {
			t.Fatal("internal node not full")
		}
		// x-partition: left subtree strictly Less than SplitPt, right not.
		var assert func(c *MemNode, left bool)
		assert = func(c *MemNode, left bool) {
			if c == nil {
				return
			}
			for _, p := range c.Pts {
				if left != p.Less(n.SplitPt) {
					t.Fatalf("partition violation: %v left=%v split=%v", p, left, n.SplitPt)
				}
			}
			assert(c.Left, left)
			assert(c.Right, left)
		}
		assert(n.Left, true)
		assert(n.Right, false)
		walk(n.Left, n.MinY)
		walk(n.Right, n.MinY)
	}
	walk(root, int64(1)<<62)
	if len(seen) != want {
		t.Fatalf("tree holds %d points, want %d", len(seen), want)
	}
}

func TestBuildEmpty(t *testing.T) {
	if Build(nil, 4) != nil {
		t.Fatal("empty build returned a node")
	}
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 50, 500} {
		for _, b := range []int{2, 4, 16} {
			pts := randomPoints(n, int64(n*b))
			SortAsc(pts)
			root := Build(pts, b)
			checkInvariants(t, root, b, n)
		}
	}
}

func TestBuildDuplicateCoordinates(t *testing.T) {
	var pts []record.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, record.Point{X: int64(i % 3), Y: int64(i % 2), ID: uint64(i + 1)})
	}
	SortAsc(pts)
	root := Build(pts, 8)
	checkInvariants(t, root, 8, 200)
}

func TestBuildProperty(t *testing.T) {
	f := func(raw []struct{ X, Y uint8 }) bool {
		pts := make([]record.Point, len(raw))
		for i, r := range raw {
			pts[i] = record.Point{X: int64(r.X), Y: int64(r.Y), ID: uint64(i + 1)}
		}
		SortAsc(pts)
		root := Build(pts, 4)
		// Count points.
		count := 0
		var walk func(n *MemNode)
		walk = func(n *MemNode) {
			if n == nil {
				return
			}
			count += len(n.Pts)
			walk(n.Left)
			walk(n.Right)
		}
		walk(root)
		return count == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortOrders(t *testing.T) {
	pts := randomPoints(100, 9)
	SortByYDesc(pts)
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Y < pts[i].Y {
			t.Fatal("SortByYDesc not descending")
		}
	}
	SortByXDesc(pts)
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X < pts[i].X {
			t.Fatal("SortByXDesc not descending")
		}
	}
	SortByXAsc(pts)
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X > pts[i].X {
			t.Fatal("SortByXAsc not ascending")
		}
	}
	SortAsc(pts)
	for i := 1; i < len(pts); i++ {
		if pts[i].Less(pts[i-1]) {
			t.Fatal("SortAsc not ascending")
		}
	}
}
