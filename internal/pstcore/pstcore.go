// Package pstcore holds the in-memory priority-search-tree construction
// shared by the external 2-sided (extpst) and 3-sided (ext3side)
// structures: each node keeps its subtree's top-B points by y and splits the
// remainder at the x-median, exactly the [IKO] decomposition of Figure 4.
package pstcore

import (
	"sort"

	"pathcache/internal/record"
)

// MemNode is one node of the in-memory PST used during construction.
type MemNode struct {
	Pts         []record.Point // top-B by y, stored y-descending
	Split       int64          // x-median of the remaining points
	SplitPt     record.Point   // full split point: Left holds exactly the points Less than it
	MinY        int64          // minimum y among Pts
	Left, Right *MemNode
}

// Build builds the PST over points sorted ascending by (X, Y, ID). Each node
// holds at most b points; children exist only when more than b points remain.
func Build(sorted []record.Point, b int) *MemNode {
	if len(sorted) == 0 {
		return nil
	}
	n := &MemNode{}
	if len(sorted) <= b {
		n.Pts = append([]record.Point(nil), sorted...)
		SortByYDesc(n.Pts)
		n.MinY = n.Pts[len(n.Pts)-1].Y
		n.Split = sorted[len(sorted)/2].X
		n.SplitPt = sorted[len(sorted)/2]
		return n
	}
	// Deterministic top-b selection by (y desc, then point order).
	idx := make([]int, len(sorted))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		pi, pj := sorted[idx[i]], sorted[idx[j]]
		if pi.Y != pj.Y {
			return pi.Y > pj.Y
		}
		return pi.Less(pj)
	})
	taken := make(map[int]bool, b)
	for _, i := range idx[:b] {
		taken[i] = true
	}
	rest := make([]record.Point, 0, len(sorted)-b)
	for i, p := range sorted {
		if taken[i] {
			n.Pts = append(n.Pts, p)
		} else {
			rest = append(rest, p)
		}
	}
	SortByYDesc(n.Pts)
	n.MinY = n.Pts[len(n.Pts)-1].Y
	mid := len(rest) / 2
	n.Split = rest[mid].X
	n.SplitPt = rest[mid]
	n.Left = Build(rest[:mid], b)
	n.Right = Build(rest[mid:], b)
	return n
}

// SortAsc sorts points ascending by (X, Y, ID), the order Build expects.
func SortAsc(pts []record.Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
}

// SortedAsc returns pts in ascending (X, Y, ID) order without mutating the
// input: already-sorted input is returned as-is (zero copies — the path the
// LSM and shard rebuild pipelines hit, since they feed merge-sorted runs),
// otherwise one copy is made and sorted. Builders treat the result as
// read-only, which is what makes the aliasing safe.
func SortedAsc(pts []record.Point) []record.Point {
	if sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Less(pts[j]) }) {
		return pts
	}
	cp := append([]record.Point(nil), pts...)
	SortAsc(cp)
	return cp
}

// SortByYDesc sorts points by decreasing y, ties by ascending point order.
func SortByYDesc(pts []record.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Y != pts[j].Y {
			return pts[i].Y > pts[j].Y
		}
		return pts[i].Less(pts[j])
	})
}

// SortByXDesc sorts points by decreasing x, ties by ascending point order.
func SortByXDesc(pts []record.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X > pts[j].X
		}
		return pts[i].Less(pts[j])
	})
}

// SortByXAsc sorts points by increasing x, ties by ascending point order.
func SortByXAsc(pts []record.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Less(pts[j])
	})
}
