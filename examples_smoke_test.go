package pathcache_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Every example must run to completion; several verify themselves against
// brute force and exit non-zero on mismatch.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	examples := []struct {
		dir  string
		want string // substring the output must contain
	}{
		{"quickstart", "indexed 200000 points"},
		{"temporal", "who was employed"},
		{"classindex", "containment check"},
		{"decomposition", "external index agrees"},
		{"intervaljoin", "brute-force check"},
		{"persistence", "reopened results match"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex.dir, err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Fatalf("example %s output missing %q:\n%s", ex.dir, ex.want, out)
			}
		})
	}
}
