package pathcache

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pathcache/internal/engine"
	"pathcache/internal/obs"
	"pathcache/internal/shard"
)

// This file is the horizontal scale-out layer: a Sharded store owns N
// single-store indexes — separate files, separate buffer pools, separate
// metric registries — behind a range partition of the routing-key space
// (point X, interval Lo). Queries scatter to the shards their predicate can
// touch, run against each shard's own engine, and gather in canonical
// order; the shard map persists in a manifest file committed with the same
// write-all-new → flip → free-old discipline every other durable structure
// in the repository uses (DESIGN.md §8, §13).

// kindShard is the registry kind byte of the shard-map manifest.
const kindShard = shard.Kind

const shardKindName = shard.KindName

func init() {
	engine.Register(engine.Descriptor{Kind: kindShard, Name: shardKindName, Open: openShardMap, Bound: obs.LogBBound})
}

// openShardMap is the registered opener for a shard-map manifest file. A
// sharded store is a directory — the manifest alone cannot reach the shard
// files — so after validating the map (surfacing torn or flipped bytes as
// ErrCorrupt) the opener directs callers to the directory API.
func openShardMap(be *engine.Backend, blob []byte) (any, error) {
	if _, err := shard.LoadBlob(be, blob); err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return nil, errors.New("pathcache: file is a shard-map manifest; open its directory with OpenSharded")
}

// ShardPlan configures how a sharded build partitions the routing-key
// space (point X, interval Lo).
type ShardPlan struct {
	// Shards is the desired shard count (>= 1): the split keys become the
	// quantiles of the routing keys, so shards hold roughly equal record
	// counts even under skew. Concentrated distributions can yield fewer
	// shards than asked for. Ignored when Splits is set.
	Shards int
	// Splits, when set, are explicit strictly-ascending split keys: shard i
	// covers routing keys in [Splits[i-1], Splits[i]), unbounded at the
	// ends. Every shard of a static kind must end up non-empty.
	Splits []int64
	// Scheme selects the flat 2-sided scheme for "twosided" and "stabbing"
	// shards; the recursive schemes keep in-memory tables and cannot be
	// reopened, so they are rejected.
	Scheme Scheme
	// Uncached builds "segment" and "interval" shards without path caching.
	Uncached bool
	// Base is the base kind of "lsm" shards (default "twosided").
	Base string
}

// Sharded is a horizontally partitioned store: N independent single-store
// indexes of one kind behind a range-partitioned key space. Queries
// scatter to the shards whose key range intersects the predicate and
// gather in canonical order; updates (for "lsm" shards) route to exactly
// the owning shard. Shard membership is copy-on-write — Split and
// ReloadShard install fresh state while in-flight readers finish against
// the snapshot they pinned, so readers never block.
type Sharded struct {
	dir  string
	opts *Options // per-shard runtime options (pool, sentinels, tracer)
	kind byte     // content kind byte of every shard
	base byte     // lsm base kind byte; zero for static kinds

	be     *engine.Backend // shard-map manifest store
	router *shard.Router

	mu     sync.Mutex // serializes updates, splits, reloads and Close
	closed bool
}

// backender is the in-package seam to an index's engine backend; every
// concrete index type satisfies it by embedding core.
type backender interface{ backend() *engine.Backend }

// shardFileName names shard files by an ever-increasing sequence number so
// a split never reuses a live shard's name.
func shardFileName(seq uint64) string { return fmt.Sprintf("shard-%04d.pc", seq) }

// cloneShardOptions copies opts for per-shard reuse, dropping the
// build-target fields that are per-file.
func cloneShardOptions(opts *Options) *Options {
	if opts == nil {
		return nil
	}
	o := *opts
	o.Path, o.testFile = "", nil
	return &o
}

// shardFileOptions is the per-shard build variant of opts targeting path.
func shardFileOptions(opts *Options, path string) *Options {
	o := cloneShardOptions(opts)
	if o == nil {
		o = &Options{}
	}
	o.Path = path
	return o
}

func kindByName(name string) (engine.Descriptor, bool) {
	for _, d := range engine.Kinds() {
		if d.Name == name {
			return d, true
		}
	}
	return engine.Descriptor{}, false
}

// shardPartition resolves the plan's split keys over the routing keys and
// groups record indices by owning shard.
func shardPartition(keys []int64, plan ShardPlan) ([]int64, [][]int, error) {
	var splits []int64
	if len(plan.Splits) > 0 {
		splits = append([]int64(nil), plan.Splits...)
		for i := 1; i < len(splits); i++ {
			if splits[i] <= splits[i-1] {
				return nil, nil, fmt.Errorf("pathcache: shard splits must be strictly ascending")
			}
		}
	} else {
		if plan.Shards < 1 {
			return nil, nil, fmt.Errorf("pathcache: shard plan needs Shards >= 1 or explicit Splits")
		}
		// SplitKeys sorts its argument in place; keys must keep record order
		// for the grouping below.
		splits = shard.SplitKeys(append([]int64(nil), keys...), plan.Shards)
	}
	if len(splits)+1 > shard.MaxShards {
		return nil, nil, fmt.Errorf("pathcache: %d shards exceeds the maximum %d", len(splits)+1, shard.MaxShards)
	}
	groups := make([][]int, len(splits)+1)
	for i, k := range keys {
		g := shard.Locate(splits, k)
		groups[g] = append(groups[g], i)
	}
	return splits, groups, nil
}

// BuildShardedPoints builds a sharded store of a point kind ("twosided",
// "threeside", "window", or "lsm" over a point base) under dir: one file
// per shard plus the shard-map manifest, each shard holding the points
// whose X falls in its key range. For "lsm" with an interval base, pass
// the diagonal-corner encodings (IntervalToDynamicPoint).
func BuildShardedPoints(dir, kind string, pts []Point, plan ShardPlan, opts *Options) (*Sharded, error) {
	switch kind {
	case "twosided", "threeside", "window", lsmKindName:
	default:
		return nil, fmt.Errorf("pathcache: kind %q is not built from points (interval kinds use BuildShardedIntervals)", kind)
	}
	if kind == "twosided" && plan.Scheme > SchemeSegmented {
		return nil, fmt.Errorf("pathcache: sharded stores need a flat persistable scheme, not %v", plan.Scheme)
	}
	keys := make([]int64, len(pts))
	for i, p := range pts {
		keys[i] = p.X
	}
	return buildSharded(dir, kind, plan, opts, keys, func(group []int, fileOpts *Options) (Index, error) {
		sub := make([]Point, len(group))
		for j, i := range group {
			sub[j] = pts[i]
		}
		switch kind {
		case "twosided":
			return NewTwoSidedIndex(sub, plan.Scheme, fileOpts)
		case "threeside":
			return NewThreeSidedIndex(sub, fileOpts)
		case "window":
			return NewWindowIndex(sub, fileOpts)
		default:
			return BuildDynamic(lsmBaseName(plan), sub, fileOpts)
		}
	})
}

// BuildShardedIntervals builds a sharded store of an interval kind
// ("segment", "interval", "stabbing") under dir, each shard holding the
// intervals whose Lo falls in its key range.
func BuildShardedIntervals(dir, kind string, ivs []Interval, plan ShardPlan, opts *Options) (*Sharded, error) {
	switch kind {
	case "segment", "interval", "stabbing":
	default:
		return nil, fmt.Errorf("pathcache: kind %q is not built from intervals (point kinds use BuildShardedPoints)", kind)
	}
	if kind == "stabbing" && plan.Scheme > SchemeSegmented {
		return nil, fmt.Errorf("pathcache: sharded stores need a flat persistable scheme, not %v", plan.Scheme)
	}
	keys := make([]int64, len(ivs))
	for i, iv := range ivs {
		keys[i] = iv.Lo
	}
	return buildSharded(dir, kind, plan, opts, keys, func(group []int, fileOpts *Options) (Index, error) {
		sub := make([]Interval, len(group))
		for j, i := range group {
			sub[j] = ivs[i]
		}
		switch kind {
		case "segment":
			return NewSegmentIndex(sub, !plan.Uncached, fileOpts)
		case "interval":
			return NewIntervalIndex(sub, !plan.Uncached, fileOpts)
		default:
			return NewStabbingIndex(sub, plan.Scheme, fileOpts)
		}
	})
}

func lsmBaseName(plan ShardPlan) string {
	if plan.Base == "" {
		return "twosided"
	}
	return plan.Base
}

// buildSharded is the shared build path: create the manifest store first
// (a crash anywhere before the final map commit reopens as ErrNoIndex),
// build every shard file, then commit the map — the single flip that makes
// the directory a store.
func buildSharded(dir, kindName string, plan ShardPlan, opts *Options, keys []int64, build func(group []int, fileOpts *Options) (Index, error)) (*Sharded, error) {
	d, ok := kindByName(kindName)
	if !ok {
		return nil, fmt.Errorf("pathcache: unknown kind %q", kindName)
	}
	var baseKind byte
	if kindName == lsmKindName {
		bd, ok := kindByName(lsmBaseName(plan))
		if !ok {
			return nil, fmt.Errorf("pathcache: unknown base kind %q", lsmBaseName(plan))
		}
		baseKind = bd.Kind
	}
	splits, groups, err := shardPartition(keys, plan)
	if err != nil {
		return nil, err
	}
	if kindName != lsmKindName {
		for i, g := range groups {
			if len(g) == 0 {
				return nil, fmt.Errorf("pathcache: splits leave static shard %d empty", i)
			}
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	pageSize := 0
	if opts != nil {
		pageSize = opts.PageSize
	}
	mbe, err := engine.New(engine.Config{Path: filepath.Join(dir, shard.MapFileName), PageSize: pageSize})
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	files := make([]string, len(groups))
	shards := make([]shard.Shard, len(groups))
	var built []Index
	fail := func(err error) (*Sharded, error) {
		for _, ix := range built {
			ix.Close()
		}
		mbe.Close()
		return nil, err
	}
	runtimeOpts := cloneShardOptions(opts)
	for i, g := range groups {
		files[i] = shardFileName(uint64(i))
		path := filepath.Join(dir, files[i])
		ix, err := build(g, shardFileOptions(opts, path))
		if err != nil {
			return fail(err)
		}
		built = append(built, ix)
		ix.(backender).backend().Obs().SetShard(i)
		shards[i] = shard.Shard{File: files[i], Ref: newShardHandle(path, ix, runtimeOpts)}
	}
	m := &shard.Map{Epoch: 1, Seq: uint64(len(groups)), Kind: d.Kind, Base: baseKind, Splits: splits, Files: files}
	if err := shard.Save(mbe, m); err != nil {
		return fail(fmt.Errorf("pathcache: %w", err))
	}
	return &Sharded{
		dir:    dir,
		opts:   runtimeOpts,
		kind:   d.Kind,
		base:   baseKind,
		be:     mbe,
		router: shard.NewRouter(shards, splits, m.Epoch, m.Seq),
	}, nil
}

// newShardHandle wraps one shard index in a hot-swap handle whose Reload
// reopens with the store's per-shard options.
func newShardHandle(path string, ix Index, opts *Options) *Handle {
	h := NewHandle(path, ix)
	h.SetOpener(func() (Index, error) { return openIndexWith(path, opts) })
	return h
}

// OpenSharded reopens a sharded store built under dir. Every shard opens
// with its own engine — its own buffer pool, metric registry and bound
// sentinels configured from opts — and records its series tagged with its
// shard number. A manifest whose final commit never landed fails with
// ErrNoIndex; torn state surfaces as ErrCorrupt — never partial answers.
func OpenSharded(dir string, opts *Options) (*Sharded, error) {
	mbe, err := engine.Open(filepath.Join(dir, shard.MapFileName))
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	blob, err := mbe.ReadMeta(kindShard)
	if err != nil {
		mbe.Close()
		return nil, err
	}
	m, err := shard.LoadBlob(mbe, blob)
	if err != nil {
		mbe.Close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	runtimeOpts := cloneShardOptions(opts)
	shards := make([]shard.Shard, len(m.Files))
	var opened []Index
	fail := func(err error) (*Sharded, error) {
		for _, ix := range opened {
			ix.Close()
		}
		mbe.Close()
		return nil, err
	}
	wantKind := engine.KindName(m.Kind)
	for i, f := range m.Files {
		path := filepath.Join(dir, f)
		ix, err := openIndexWith(path, runtimeOpts)
		if err != nil {
			return fail(fmt.Errorf("pathcache: shard %s: %w", f, err))
		}
		opened = append(opened, ix)
		if ix.Kind() != wantKind {
			return fail(fmt.Errorf("pathcache: shard %s holds %q, shard map says %q: %w", f, ix.Kind(), wantKind, ErrKindMismatch))
		}
		if lx, ok := ix.(*LSMIndex); ok && lx.Base() != engine.KindName(m.Base) {
			return fail(fmt.Errorf("pathcache: shard %s has base %q, shard map says %q: %w", f, lx.Base(), engine.KindName(m.Base), ErrKindMismatch))
		}
		ix.(backender).backend().Obs().SetShard(i)
		shards[i] = shard.Shard{File: f, Ref: newShardHandle(path, ix, runtimeOpts)}
	}
	return &Sharded{
		dir:    dir,
		opts:   runtimeOpts,
		kind:   m.Kind,
		base:   m.Base,
		be:     mbe,
		router: shard.NewRouter(shards, m.Splits, m.Epoch, m.Seq),
	}, nil
}

// Kind reports the registry name "shard".
func (s *Sharded) Kind() string { return shardKindName }

// ContentKind reports the registry name of the kind every shard holds.
func (s *Sharded) ContentKind() string { return engine.KindName(s.kind) }

// Base reports the base kind name of "lsm" shards, "" for static kinds.
func (s *Sharded) Base() string {
	if s.kind != kindLSM {
		return ""
	}
	return engine.KindName(s.base)
}

// Dir reports the store's directory.
func (s *Sharded) Dir() string { return s.dir }

// NumShards reports the current shard count.
func (s *Sharded) NumShards() int {
	shards, _, _ := s.router.Snapshot()
	return len(shards)
}

// Epoch reports the shard map's epoch, bumped by every Split.
func (s *Sharded) Epoch() uint64 { return s.router.Epoch() }

// Splits returns a copy of the current split keys: shard i covers routing
// keys in [Splits[i-1], Splits[i]), unbounded at the ends.
func (s *Sharded) Splits() []int64 {
	_, splits, _ := s.router.Snapshot()
	return append([]int64(nil), splits...)
}

// acquireShard pins one shard's index for the duration of an operation.
func acquireShard(sh shard.Shard) (Index, func() error, error) {
	return sh.Ref.(*Handle).Acquire()
}

// shardRetries bounds how often an operation restarts after losing a race
// with a concurrent Split or ReloadShard swap.
const shardRetries = 16

// withSnapshot runs fn against one consistent router snapshot, retrying
// from scratch when a concurrent swap retires a pinned shard mid-operation
// (fn must reset its outputs on entry): a retried operation never mixes
// results from two epochs.
func (s *Sharded) withSnapshot(fn func(shards []shard.Shard, splits []int64) error) error {
	var err error
	for attempt := 0; attempt < shardRetries; attempt++ {
		shards, splits, _ := s.router.Snapshot()
		if err = fn(shards, splits); !errors.Is(err, ErrHandleClosed) {
			return err
		}
	}
	return err
}

// forEachShard visits every shard in order under one snapshot.
func (s *Sharded) forEachShard(fn func(i int, ix Index) error) error {
	return s.withSnapshot(func(shards []shard.Shard, _ []int64) error {
		for i := range shards {
			ix, release, err := acquireShard(shards[i])
			if err != nil {
				return err
			}
			err = fn(i, ix)
			if rerr := release(); err == nil {
				err = rerr
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// Len reports the summed record count across shards.
func (s *Sharded) Len() int {
	n := 0
	s.forEachShard(func(_ int, ix Index) error {
		n += ix.Len()
		return nil
	})
	return n
}

// Pages reports the storage footprint: every shard plus the manifest.
func (s *Sharded) Pages() int {
	n := s.be.NumPages()
	s.forEachShard(func(_ int, ix Index) error {
		n += ix.Pages()
		return nil
	})
	return n
}

// Stats sums the store-level I/O counters of every shard and the manifest.
func (s *Sharded) Stats() Stats {
	st := s.be.Stats()
	out := Stats{Reads: st.Reads, Writes: st.Writes, Pages: s.be.NumPages()}
	s.forEachShard(func(_ int, ix Index) error {
		sst := ix.Stats()
		out.Reads += sst.Reads
		out.Writes += sst.Writes
		out.Pages += sst.Pages
		return nil
	})
	return out
}

// ShardStats reports each shard's own store-level counters, in shard
// order — the per-shard ground truth the batch statistics sum to.
func (s *Sharded) ShardStats() []Stats {
	var out []Stats
	s.forEachShard(func(_ int, ix Index) error {
		out = append(out, ix.Stats())
		return nil
	})
	return out
}

// Metrics merges every shard's metric series; each OpMetrics carries the
// Shard that recorded it.
func (s *Sharded) Metrics() Metrics {
	var out Metrics
	s.forEachShard(func(_ int, ix Index) error {
		m := ix.Metrics()
		out.Inflight += m.Inflight
		out.Ops = append(out.Ops, m.Ops...)
		return nil
	})
	return out
}

// ResetStats zeroes the I/O counters of every shard and the manifest.
func (s *Sharded) ResetStats() {
	s.be.ResetStats()
	s.forEachShard(func(_ int, ix Index) error {
		ix.ResetStats()
		return nil
	})
}

// ResetMetrics drops every shard's recorded metric series.
func (s *Sharded) ResetMetrics() {
	s.forEachShard(func(_ int, ix Index) error {
		if r, ok := ix.(interface{ ResetMetrics() }); ok {
			r.ResetMetrics()
		}
		return nil
	})
}

// ShardInfo describes one shard of a sharded store.
type ShardInfo struct {
	Shard int
	File  string
	Kind  string
	Len   int
	Pages int
	// Lo and Hi bound the shard's routing keys: Lo <= k < Hi, with
	// MinInt64/MaxInt64 standing in on the unbounded first and last shards.
	Lo, Hi int64
	Stats  Stats
}

// Shards describes the current shards in order.
func (s *Sharded) Shards() []ShardInfo {
	var out []ShardInfo
	s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		out = out[:0]
		for i := range shards {
			info := ShardInfo{Shard: i, File: shards[i].File, Lo: math.MinInt64, Hi: math.MaxInt64}
			if i > 0 {
				info.Lo = splits[i-1]
			}
			if i < len(splits) {
				info.Hi = splits[i]
			}
			ix, release, err := acquireShard(shards[i])
			if err != nil {
				return err
			}
			info.Kind, info.Len, info.Pages, info.Stats = ix.Kind(), ix.Len(), ix.Pages(), ix.Stats()
			release()
			out = append(out, info)
		}
		return nil
	})
	return out
}

// ReloadShard reopens shard i from its file and hot-swaps it in: readers
// pinned to the superseded snapshot finish undisturbed and never block.
func (s *Sharded) ReloadShard(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrHandleClosed
	}
	shards, _, _ := s.router.Snapshot()
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("pathcache: no shard %d", i)
	}
	h := shards[i].Ref.(*Handle)
	if err := h.Reload(); err != nil {
		return err
	}
	ix, release, err := h.Acquire()
	if err != nil {
		return err
	}
	ix.(backender).backend().Obs().SetShard(i)
	return release()
}

// Close retires every shard handle (each shard's file closes once its last
// in-flight reader releases) and closes the manifest. Idempotent.
func (s *Sharded) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	shards, _, _ := s.router.Snapshot()
	for i := range shards {
		if err := shards[i].Ref.(*Handle).Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.be.Close(); err != nil && first == nil {
		first = fmt.Errorf("pathcache: %w", err)
	}
	return first
}

// Split divides shard i in two at the median routing key. The shard's
// records are enumerated from a pinned copy-on-write snapshot and rebuilt
// into two fresh files with the kind's own builder; the new shard map then
// commits through the manifest's write-all-new → flip → free-old
// discipline, the router installs the new shards, and the old file is
// retired only after its last in-flight reader releases — concurrent
// readers never block and never see a half-split store. Supported for the
// enumerable kinds: "twosided", "threeside", "window", "stabbing", and
// "lsm" on non-interval bases. The segment and interval trees expose no
// enumeration and cannot split.
func (s *Sharded) Split(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrHandleClosed
	}
	shards, splits, epoch := s.router.Snapshot()
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("pathcache: split: no shard %d", i)
	}
	if len(shards)+1 > shard.MaxShards {
		return fmt.Errorf("pathcache: split: already at the maximum %d shards", shard.MaxShards)
	}
	h := shards[i].Ref.(*Handle)
	ix, release, err := h.Acquire()
	if err != nil {
		return err
	}
	defer release()

	seq := s.router.Seq()
	leftFile, rightFile := shardFileName(seq), shardFileName(seq+1)
	leftPath := filepath.Join(s.dir, leftFile)
	rightPath := filepath.Join(s.dir, rightFile)
	key, leftIx, rightIx, err := s.splitShard(ix, leftPath, rightPath)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		leftIx.Close()
		rightIx.Close()
		os.Remove(leftPath)
		os.Remove(rightPath)
		return err
	}

	newSplits := make([]int64, 0, len(splits)+1)
	newSplits = append(newSplits, splits[:i]...)
	newSplits = append(newSplits, key)
	newSplits = append(newSplits, splits[i:]...)
	newFiles := make([]string, 0, len(shards)+1)
	for j := range shards {
		if j == i {
			newFiles = append(newFiles, leftFile, rightFile)
			continue
		}
		newFiles = append(newFiles, shards[j].File)
	}
	m := &shard.Map{Epoch: epoch + 1, Seq: seq + 2, Kind: s.kind, Base: s.base, Splits: newSplits, Files: newFiles}
	if err := shard.Save(s.be, m); err != nil {
		return abort(fmt.Errorf("pathcache: %w", err))
	}

	newShards := make([]shard.Shard, 0, len(shards)+1)
	newShards = append(newShards, shards[:i]...)
	newShards = append(newShards,
		shard.Shard{File: leftFile, Ref: newShardHandle(leftPath, leftIx, s.opts)},
		shard.Shard{File: rightFile, Ref: newShardHandle(rightPath, rightIx, s.opts)})
	newShards = append(newShards, shards[i+1:]...)
	for j := range newShards {
		if bx, ok := newShards[j].Ref.(*Handle); ok {
			if six, rel, err := bx.Acquire(); err == nil {
				six.(backender).backend().Obs().SetShard(j)
				rel()
			}
		}
	}
	s.router.Install(newShards, newSplits, m.Epoch, m.Seq)
	h.Close()
	os.Remove(filepath.Join(s.dir, shards[i].File))
	return nil
}

// splitShard enumerates ix's records, picks the median routing key, and
// builds the two halves into fresh shard files.
func (s *Sharded) splitShard(ix Index, leftPath, rightPath string) (int64, Index, Index, error) {
	lo := shardFileOptions(s.opts, leftPath)
	ro := shardFileOptions(s.opts, rightPath)
	switch t := ix.(type) {
	case *TwoSidedIndex:
		pts, err := t.Query(math.MinInt64, math.MinInt64)
		if err != nil {
			return 0, nil, nil, err
		}
		return splitPoints(pts, func(sub []Point, o *Options) (Index, error) {
			return NewTwoSidedIndex(sub, t.Scheme(), o)
		}, lo, ro)
	case *ThreeSidedIndex:
		pts, err := t.Query(math.MinInt64, math.MaxInt64, math.MinInt64)
		if err != nil {
			return 0, nil, nil, err
		}
		return splitPoints(pts, func(sub []Point, o *Options) (Index, error) {
			return NewThreeSidedIndex(sub, o)
		}, lo, ro)
	case *WindowIndex:
		pts, err := t.Query(math.MinInt64, math.MaxInt64, math.MinInt64, math.MaxInt64)
		if err != nil {
			return 0, nil, nil, err
		}
		return splitPoints(pts, func(sub []Point, o *Options) (Index, error) {
			return NewWindowIndex(sub, o)
		}, lo, ro)
	case *StabbingIndex:
		// Enumerate through the underlying 2-sided engine and decode the
		// diagonal-corner reduction: routing is by interval Lo.
		pts, err := t.ix.Query(math.MinInt64, math.MinInt64)
		if err != nil {
			return 0, nil, nil, err
		}
		ivs := make([]Interval, len(pts))
		for j, p := range pts {
			ivs[j] = pointToInterval(p)
		}
		scheme := t.ix.Scheme()
		return splitIntervals(ivs, func(sub []Interval, o *Options) (Index, error) {
			return NewStabbingIndex(sub, scheme, o)
		}, lo, ro)
	case *LSMIndex:
		pts, _, err := t.Query(math.MinInt64, math.MinInt64)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("pathcache: split: %w", err)
		}
		base := t.Base()
		return splitPoints(pts, func(sub []Point, o *Options) (Index, error) {
			return BuildDynamic(base, sub, o)
		}, lo, ro)
	default:
		return 0, nil, nil, fmt.Errorf("pathcache: split unsupported for %s shards (no enumeration)", ix.Kind())
	}
}

// medianSplitKey picks the median of keys, adjusted upward past any run of
// duplicates so both halves end up non-empty.
func medianSplitKey(keys []int64) (int64, error) {
	if len(keys) < 2 {
		return 0, errors.New("pathcache: split: shard has fewer than 2 records")
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	k := sorted[len(sorted)/2]
	if k == sorted[0] {
		for _, v := range sorted {
			if v > sorted[0] {
				k = v
				break
			}
		}
		if k == sorted[0] {
			return 0, errors.New("pathcache: split: all routing keys equal")
		}
	}
	return k, nil
}

func splitPoints(pts []Point, build func([]Point, *Options) (Index, error), lo, ro *Options) (int64, Index, Index, error) {
	keys := make([]int64, len(pts))
	for i, p := range pts {
		keys[i] = p.X
	}
	key, err := medianSplitKey(keys)
	if err != nil {
		return 0, nil, nil, err
	}
	var left, right []Point
	for _, p := range pts {
		if p.X < key {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	leftIx, rightIx, err := buildHalves(left, right, build, lo, ro)
	return key, leftIx, rightIx, err
}

func splitIntervals(ivs []Interval, build func([]Interval, *Options) (Index, error), lo, ro *Options) (int64, Index, Index, error) {
	keys := make([]int64, len(ivs))
	for i, iv := range ivs {
		keys[i] = iv.Lo
	}
	key, err := medianSplitKey(keys)
	if err != nil {
		return 0, nil, nil, err
	}
	var left, right []Interval
	for _, iv := range ivs {
		if iv.Lo < key {
			left = append(left, iv)
		} else {
			right = append(right, iv)
		}
	}
	leftIx, rightIx, err := buildHalves(left, right, build, lo, ro)
	return key, leftIx, rightIx, err
}

func buildHalves[R any](left, right []R, build func([]R, *Options) (Index, error), lo, ro *Options) (Index, Index, error) {
	leftIx, err := build(left, lo)
	if err != nil {
		return nil, nil, err
	}
	rightIx, err := build(right, ro)
	if err != nil {
		leftIx.Close()
		os.Remove(lo.Path)
		return nil, nil, err
	}
	return leftIx, rightIx, nil
}
