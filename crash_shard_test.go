package pathcache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
	"pathcache/internal/shard"
)

// Crash sweep for the sharded tier: kill the shard-map manifest at every
// write I/O point of a commit (with torn-write variants), and every write
// point of a shard file's build, then reopen through the public API. The
// §8 contract extends to the directory: the store either recovers a map
// that was committed — never a partial partition — or fails cleanly with
// ErrNoIndex / ErrCorrupt.

// shardMapsEqual reports whether two decoded maps are identical.
func shardMapsEqual(a, b *shard.Map) bool {
	if a.Epoch != b.Epoch || a.Seq != b.Seq || a.Kind != b.Kind || a.Base != b.Base {
		return false
	}
	if len(a.Splits) != len(b.Splits) || len(a.Files) != len(b.Files) {
		return false
	}
	for i := range a.Splits {
		if a.Splits[i] != b.Splits[i] {
			return false
		}
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			return false
		}
	}
	return true
}

// copyShardDir clones a sharded store directory for one sweep iteration.
func copyShardDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// replayManifest re-runs a manifest commit sequence over a crash-injected
// file and returns the first error.
func replayManifest(f disk.File, pageSize int, maps ...*shard.Map) error {
	be, err := engine.New(engine.Config{File: f, PageSize: pageSize})
	if err != nil {
		return err
	}
	for _, m := range maps {
		if err := shard.Save(be, m); err != nil {
			return err
		}
	}
	return be.Close()
}

// TestCrashSweepShardMap sweeps the manifest commit itself: map A commits,
// then the process dies at every write point of map B's commit. The
// surviving image must decode to exactly A, exactly B, ErrNoIndex or a
// detected-corrupt error — a partial or blended map fails the sweep.
func TestCrashSweepShardMap(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is quadratic in commit I/Os; skipped in -short")
	}
	mapA := &shard.Map{Epoch: 1, Seq: 2, Kind: 1, Splits: []int64{500},
		Files: []string{"shard-0000.pc", "shard-0001.pc"}}
	mapB := &shard.Map{Epoch: 2, Seq: 5, Kind: 1, Splits: []int64{300, 700},
		Files: []string{"shard-0002.pc", "shard-0003.pc", "shard-0004.pc"}}

	// Instrumentation pass: count the write points and prove the intact
	// image decodes to B.
	mem := disk.NewMemFile()
	count := disk.NewCrashFile(mem, -1, 0)
	if err := replayManifest(count, crashPageSize, mapA, mapB); err != nil {
		t.Fatalf("instrumentation replay: %v", err)
	}
	total := count.Writes()
	if total < 6 {
		t.Fatalf("manifest replay performed only %d writes; sweep would be trivial", total)
	}
	dir := t.TempDir()
	img := filepath.Join(dir, "manifest.pc")
	if err := os.WriteFile(img, mem.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loadImage := func() (*shard.Map, error) {
		be, err := engine.Open(img)
		if err != nil {
			return nil, err
		}
		defer be.Close()
		return shard.Load(be)
	}
	if m, err := loadImage(); err != nil || !shardMapsEqual(m, mapB) {
		t.Fatalf("intact image: m=%+v err=%v, want map B", m, err)
	}
	t.Logf("sweeping %d manifest kill points", total)

	sawA, sawB, noIndex, corrupt := 0, 0, 0, 0
	for limit := int64(0); limit < total; limit++ {
		for _, torn := range []int{0, 13, crashPageSize / 2} {
			mem := disk.NewMemFile()
			cf := disk.NewCrashFile(mem, limit, torn)
			err := replayManifest(cf, crashPageSize, mapA, mapB)
			if !errors.Is(err, disk.ErrCrashed) {
				t.Fatalf("limit=%d torn=%d: replay err = %v, want ErrCrashed", limit, torn, err)
			}
			if err := os.WriteFile(img, mem.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			m, lerr := loadImage()
			switch {
			case lerr == nil && shardMapsEqual(m, mapA):
				sawA++
			case lerr == nil && shardMapsEqual(m, mapB):
				sawB++
			case lerr == nil:
				t.Fatalf("limit=%d torn=%d: loaded a map that is neither A nor B: %+v", limit, torn, m)
			case errors.Is(lerr, ErrNoIndex):
				noIndex++
			case errors.Is(lerr, disk.ErrCorrupt):
				corrupt++
			default:
				t.Fatalf("limit=%d torn=%d: unacceptable post-crash outcome: %v", limit, torn, lerr)
			}
		}
	}
	t.Logf("%d saw-A, %d saw-B, %d no-index, %d detected-corrupt", sawA, sawB, noIndex, corrupt)
	// Every flavor must appear: kills before A's flip roll back to
	// ErrNoIndex, kills between the flips keep A, and torn flips are
	// detected — a sweep missing one is not exercising the protocol.
	if sawA == 0 {
		t.Error("sweep never recovered map A — the pre-flip image is not holding the old commit")
	}
	if noIndex == 0 {
		t.Error("sweep never saw ErrNoIndex — early kill points are not rolling back")
	}
	if corrupt == 0 {
		t.Error("sweep never saw a detected-corrupt image — torn writes are not being exercised")
	}
}

// TestCrashSweepShardStore sweeps crashes through the whole directory
// store: a manifest re-commit dying mid-flip, and a shard file's build
// dying at every write point. OpenSharded must recover exact answers,
// report ErrNoIndex, or fail with ErrCorrupt — never serve wrong results.
func TestCrashSweepShardStore(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is quadratic in build I/Os; skipped in -short")
	}
	pts := crashPoints()
	src := t.TempDir()
	store := filepath.Join(src, "store")
	s, err := BuildShardedPoints(store, "twosided", pts, ShardPlan{Shards: 2, Scheme: SchemeSegmented}, &Options{PageSize: crashPageSize})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	splits := s.Splits()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if len(splits) != 1 {
		t.Fatalf("want 1 split key, got %v", splits)
	}
	want := func(a, b int64) []Point {
		var out []Point
		for _, p := range pts {
			if p.X >= a && p.Y >= b {
				out = append(out, p)
			}
		}
		return out
	}
	// check reopens a (possibly crashed) store copy and runs the battery.
	check := func(dir string) error {
		s, err := OpenSharded(dir, nil)
		if err != nil {
			return err
		}
		defer s.Close()
		return pointQueryBattery("sharded", pts, s.Query, want)
	}
	if err := check(store); err != nil {
		t.Fatalf("intact store fails the battery: %v", err)
	}

	t.Run("manifest-recommit", func(t *testing.T) {
		// Load the committed map, then replay commit A followed by a
		// rebalance-style no-op commit B (same partition, next epoch) over a
		// crash file, killing B's commit at every point.
		mbe, err := engine.Open(filepath.Join(store, shard.MapFileName))
		if err != nil {
			t.Fatal(err)
		}
		mapA, err := shard.Load(mbe)
		mbe.Close()
		if err != nil {
			t.Fatal(err)
		}
		mapB := mapA.Clone()
		mapB.Epoch++

		mem := disk.NewMemFile()
		count := disk.NewCrashFile(mem, -1, 0)
		if err := replayManifest(count, crashPageSize, mapA, mapB); err != nil {
			t.Fatalf("instrumentation replay: %v", err)
		}
		total := count.Writes()
		t.Logf("sweeping %d manifest kill points inside the store", total)
		recovered, failed := 0, 0
		for limit := int64(0); limit < total; limit++ {
			for _, torn := range []int{0, 13, crashPageSize / 2} {
				mem := disk.NewMemFile()
				cf := disk.NewCrashFile(mem, limit, torn)
				if err := replayManifest(cf, crashPageSize, mapA, mapB); !errors.Is(err, disk.ErrCrashed) {
					t.Fatalf("limit=%d torn=%d: replay err = %v, want ErrCrashed", limit, torn, err)
				}
				scratch := filepath.Join(t.TempDir(), "store")
				copyShardDir(t, store, scratch)
				if err := os.WriteFile(filepath.Join(scratch, shard.MapFileName), mem.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				cerr := check(scratch)
				if uerr := acceptableCrashOutcome(cerr); uerr != nil {
					t.Fatalf("limit=%d torn=%d: unacceptable post-crash outcome: %v", limit, torn, uerr)
				}
				if cerr == nil {
					recovered++
				} else {
					failed++
				}
			}
		}
		t.Logf("%d recovered, %d clean failures", recovered, failed)
		if recovered == 0 {
			t.Error("sweep never recovered — map A's commit should survive kills during B's")
		}
		if failed == 0 {
			t.Error("sweep never failed cleanly — early kill points are not being exercised")
		}
	})

	t.Run("shard-file", func(t *testing.T) {
		// Rebuild shard 0's exact contents over a crash file and drop each
		// crashed image into a store copy beside the committed manifest.
		var sub []Point
		for _, p := range pts {
			if p.X < splits[0] {
				sub = append(sub, p)
			}
		}
		buildShard := func(f disk.File) error {
			ix, err := NewTwoSidedIndex(sub, SchemeSegmented, &Options{PageSize: crashPageSize, testFile: f})
			if err != nil {
				return err
			}
			return ix.Close()
		}
		mem := disk.NewMemFile()
		count := disk.NewCrashFile(mem, -1, 0)
		if err := buildShard(count); err != nil {
			t.Fatalf("instrumentation build: %v", err)
		}
		total := count.Writes()
		t.Logf("sweeping %d shard-file kill points", total)
		recovered, noIndex, corrupt := 0, 0, 0
		for limit := int64(0); limit < total; limit++ {
			for _, torn := range []int{0, 13, crashPageSize / 2} {
				mem := disk.NewMemFile()
				cf := disk.NewCrashFile(mem, limit, torn)
				if err := buildShard(cf); !errors.Is(err, disk.ErrCrashed) {
					t.Fatalf("limit=%d torn=%d: build err = %v, want ErrCrashed", limit, torn, err)
				}
				scratch := filepath.Join(t.TempDir(), "store")
				copyShardDir(t, store, scratch)
				if err := os.WriteFile(filepath.Join(scratch, "shard-0000.pc"), mem.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				cerr := check(scratch)
				if uerr := acceptableCrashOutcome(cerr); uerr != nil {
					t.Fatalf("limit=%d torn=%d: unacceptable post-crash outcome: %v", limit, torn, uerr)
				}
				switch {
				case cerr == nil:
					recovered++
				case errors.Is(cerr, ErrNoIndex):
					noIndex++
				default:
					corrupt++
				}
			}
		}
		t.Logf("%d recovered, %d no-index, %d detected-corrupt", recovered, noIndex, corrupt)
		if noIndex == 0 {
			t.Error("sweep never saw ErrNoIndex — a shard whose build never committed must surface it")
		}
		if corrupt == 0 {
			t.Error("sweep never saw a detected-corrupt shard — torn writes are not being exercised")
		}
	})
}
