package pathcache

import (
	"fmt"

	"pathcache/internal/engine"
	"pathcache/internal/ext3side"
)

// ThreeSidedIndex is a static index answering 3-sided queries
// {a1 <= x <= a2, y >= b} — the primitive Theorems 3.3/4.5 address and the
// paper's motivation for indexing class hierarchies in object-oriented
// databases.
type ThreeSidedIndex struct {
	core
	idx *ext3side.Tree
}

// NewThreeSidedIndex builds a static 3-sided index over pts. The input
// slice is not retained.
func NewThreeSidedIndex(pts []Point, opts *Options) (*ThreeSidedIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	idx, err := ext3side.BuildLayout(c.be.Pager(), toRecPoints(pts), c.layout)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if err := c.be.SaveMeta(kindThreeSide, idx.Meta().Encode()); err != nil {
		return nil, err
	}
	c.recordBuild(engine.KindName(kindThreeSide), idx.Len())
	return &ThreeSidedIndex{core: c, idx: idx}, nil
}

// Query reports every point with a1 <= X <= a2 and Y >= b.
func (ix *ThreeSidedIndex) Query(a1, a2, b int64) ([]Point, error) {
	pts, _, err := ix.QueryProfile(a1, a2, b)
	return pts, err
}

// QueryProfile is Query plus the query's I/O profile, including the exact
// page transfers attributed to this one query by an op-scoped counter.
func (ix *ThreeSidedIndex) QueryProfile(a1, a2, b int64) ([]Point, IOProfile, error) {
	ctr, finish := ix.startOp(engine.KindName(kindThreeSide), "query")
	pts, st, err := ix.idx.WithPager(ix.be.OpPager(ctr)).Query(a1, a2, b)
	if err != nil {
		ix.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(pts), ix.idx.Len(), boundFor(kindThreeSide))
	prof.PathPages = st.PathPages
	prof.ListPages = st.ListPages
	prof.UsefulIOs = st.UsefulIOs
	prof.WastefulIOs = st.WastefulIOs
	if err != nil {
		return nil, prof, err
	}
	return fromRecPoints(pts), prof, nil
}

// Len reports the number of indexed points.
func (ix *ThreeSidedIndex) Len() int { return ix.idx.Len() }

// Kind reports the index's registry name.
func (ix *ThreeSidedIndex) Kind() string { return engine.KindName(kindThreeSide) }

// Layout reports the in-page layout of the persisted structure.
func (ix *ThreeSidedIndex) Layout() Layout { return Layout(ix.idx.Layout()) }

// Pages reports the storage footprint in pages.
func (ix *ThreeSidedIndex) Pages() int { return ix.idx.TotalPages() }
