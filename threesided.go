package pathcache

import (
	"fmt"

	"pathcache/internal/ext3side"
)

// ThreeSidedIndex is a static index answering 3-sided queries
// {a1 <= x <= a2, y >= b} — the primitive Theorems 3.3/4.5 address and the
// paper's motivation for indexing class hierarchies in object-oriented
// databases.
type ThreeSidedIndex struct {
	be  *backend
	idx *ext3side.Tree
}

// NewThreeSidedIndex builds a static 3-sided index over pts. The input
// slice is not retained.
func NewThreeSidedIndex(pts []Point, opts *Options) (*ThreeSidedIndex, error) {
	be, err := newBackend(opts)
	if err != nil {
		return nil, err
	}
	idx, err := ext3side.Build(be.pager, toRecPoints(pts))
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if err := be.saveMeta(kindThreeSide, idx.Meta().Encode()); err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &ThreeSidedIndex{be: be, idx: idx}, nil
}

// Query reports every point with a1 <= X <= a2 and Y >= b.
func (ix *ThreeSidedIndex) Query(a1, a2, b int64) ([]Point, error) {
	pts, _, err := ix.QueryProfile(a1, a2, b)
	return pts, err
}

// QueryProfile is Query plus the query's I/O profile.
func (ix *ThreeSidedIndex) QueryProfile(a1, a2, b int64) ([]Point, IOProfile, error) {
	pts, st, err := ix.idx.Query(a1, a2, b)
	if err != nil {
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	return fromRecPoints(pts), IOProfile{
		PathPages:   st.PathPages,
		ListPages:   st.ListPages,
		UsefulIOs:   st.UsefulIOs,
		WastefulIOs: st.WastefulIOs,
		Results:     st.Results,
	}, nil
}

// Len reports the number of indexed points.
func (ix *ThreeSidedIndex) Len() int { return ix.idx.Len() }

// Pages reports the storage footprint in pages.
func (ix *ThreeSidedIndex) Pages() int { return ix.idx.TotalPages() }

// Stats reports the cumulative I/O counters of the underlying store.
func (ix *ThreeSidedIndex) Stats() Stats { return ix.be.stats() }

// ResetStats zeroes the I/O counters.
func (ix *ThreeSidedIndex) ResetStats() { ix.be.resetStats() }
