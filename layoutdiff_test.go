package pathcache

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// Cross-layout differential battery: every persisted static kind is built
// twice over the same dataset — once per page layout — and driven through an
// identical randomized query stream. Both builds must return byte-identical
// results AND touch exactly the same number of pages per operation
// (Reads+CacheHits; without a pool CacheHits is zero, and prefetch only
// shifts reads into hits, never changes the sum). The layout is a physical
// in-page encoding, so any divergence — in results or in I/O — is a bug.
//
// Failures shrink by halving the op count while the divergence persists
// (runs are deterministic in (ops, seed)) and print a one-line reproducer:
//
//	PC_LAYOUTDIFF_SEED=<seed> go test -run TestLayoutDifferential

const layoutDiffOps = 200

// layoutDiffSeeds returns the stream seeds: the fixed list, or the single
// seed PC_LAYOUTDIFF_SEED requests.
func layoutDiffSeeds(t *testing.T) []int64 {
	if s := os.Getenv("PC_LAYOUTDIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PC_LAYOUTDIFF_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{201, 202}
}

// layoutDiffConfig is one store configuration the battery runs both layouts
// under. The prefetching config also exercises the async pipeline: the
// Reads+CacheHits sum must stay identical even though the split moves.
type layoutDiffConfig struct {
	name     string
	pool     int
	prefetch int
}

func layoutDiffConfigs() []layoutDiffConfig {
	return []layoutDiffConfig{
		{name: "cold", pool: 0, prefetch: 0},
		{name: "pool", pool: 16, prefetch: 0},
		{name: "pool+prefetch", pool: 16, prefetch: 2},
	}
}

func layoutDiffOpts(layout Layout, cfg layoutDiffConfig) *Options {
	return &Options{
		PageSize:        512,
		BufferPoolPages: cfg.pool,
		Layout:          layout,
		PrefetchWorkers: cfg.prefetch,
	}
}

// layoutKindDriver builds one kind under a layout/config and answers one
// query of the stream, returning a canonical result string plus the op's
// touched-page count (Reads+CacheHits).
type layoutKindDriver struct {
	name  string
	build func(rng *rand.Rand, n int, layout Layout, cfg layoutDiffConfig) (layoutProbe, error)
}

// layoutProbe runs queries against one built index. Both layout instances of
// a kind receive the same query parameters, so probe implementations must
// derive nothing from per-instance randomness.
type layoutProbe interface {
	query(q [4]int64) (string, int64, error)
	close() error
}

func profSum(p IOProfile) int64 { return p.Reads + p.CacheHits }

// pointProbe adapts the three point kinds.
type pointProbe struct {
	kind string
	two  *TwoSidedIndex
	thr  *ThreeSidedIndex
	win  *WindowIndex
}

func (p pointProbe) query(q [4]int64) (string, int64, error) {
	switch p.kind {
	case "twosided":
		pts, prof, err := p.two.QueryProfile(q[0], q[1])
		return fmt.Sprint(pts), profSum(prof), err
	case "threeside":
		a1, a2 := minmax(q[0], q[1])
		pts, prof, err := p.thr.QueryProfile(a1, a2, q[2])
		return fmt.Sprint(pts), profSum(prof), err
	default:
		x1, x2 := minmax(q[0], q[1])
		y1, y2 := minmax(q[2], q[3])
		pts, prof, err := p.win.QueryProfile(x1, x2, y1, y2)
		return fmt.Sprint(pts), profSum(prof), err
	}
}

func (p pointProbe) close() error {
	switch p.kind {
	case "twosided":
		return p.two.Close()
	case "threeside":
		return p.thr.Close()
	default:
		return p.win.Close()
	}
}

// stabProbe adapts the three interval kinds.
type stabProbe struct {
	kind string
	seg  *SegmentIndex
	itv  *IntervalIndex
	stb  *StabbingIndex
}

func (p stabProbe) query(q [4]int64) (string, int64, error) {
	var ivs []Interval
	var prof IOProfile
	var err error
	switch p.kind {
	case "segment":
		ivs, prof, err = p.seg.StabProfile(q[0])
	case "interval":
		ivs, prof, err = p.itv.StabProfile(q[0])
	default:
		ivs, prof, err = p.stb.StabProfile(q[0])
	}
	return fmt.Sprint(ivs), profSum(prof), err
}

func (p stabProbe) close() error {
	switch p.kind {
	case "segment":
		return p.seg.Close()
	case "interval":
		return p.itv.Close()
	default:
		return p.stb.Close()
	}
}

func minmax(a, b int64) (int64, int64) {
	if a > b {
		return b, a
	}
	return a, b
}

func layoutDiffPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Int63n(2000), Y: rng.Int63n(2000), ID: uint64(i + 1)}
	}
	return pts
}

func layoutDiffIntervals(rng *rand.Rand, n int) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := rng.Int63n(2000)
		ivs[i] = Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(400), ID: uint64(i + 1)}
	}
	return ivs
}

func layoutDiffDrivers() []layoutKindDriver {
	return []layoutKindDriver{
		{name: "twosided", build: func(rng *rand.Rand, n int, l Layout, cfg layoutDiffConfig) (layoutProbe, error) {
			ix, err := NewTwoSidedIndex(layoutDiffPoints(rng, n), SchemeSegmented, layoutDiffOpts(l, cfg))
			return pointProbe{kind: "twosided", two: ix}, err
		}},
		{name: "threeside", build: func(rng *rand.Rand, n int, l Layout, cfg layoutDiffConfig) (layoutProbe, error) {
			ix, err := NewThreeSidedIndex(layoutDiffPoints(rng, n), layoutDiffOpts(l, cfg))
			return pointProbe{kind: "threeside", thr: ix}, err
		}},
		{name: "window", build: func(rng *rand.Rand, n int, l Layout, cfg layoutDiffConfig) (layoutProbe, error) {
			ix, err := NewWindowIndex(layoutDiffPoints(rng, n), layoutDiffOpts(l, cfg))
			return pointProbe{kind: "window", win: ix}, err
		}},
		{name: "segment", build: func(rng *rand.Rand, n int, l Layout, cfg layoutDiffConfig) (layoutProbe, error) {
			ix, err := NewSegmentIndex(layoutDiffIntervals(rng, n), true, layoutDiffOpts(l, cfg))
			return stabProbe{kind: "segment", seg: ix}, err
		}},
		{name: "interval", build: func(rng *rand.Rand, n int, l Layout, cfg layoutDiffConfig) (layoutProbe, error) {
			ix, err := NewIntervalIndex(layoutDiffIntervals(rng, n), true, layoutDiffOpts(l, cfg))
			return stabProbe{kind: "interval", itv: ix}, err
		}},
		{name: "stabbing", build: func(rng *rand.Rand, n int, l Layout, cfg layoutDiffConfig) (layoutProbe, error) {
			ix, err := NewStabbingIndex(layoutDiffIntervals(rng, n), SchemeSegmented, layoutDiffOpts(l, cfg))
			return stabProbe{kind: "stabbing", stb: ix}, err
		}},
	}
}

// runLayoutDifferential builds the kind under both layouts from the same
// seeded dataset and compares every query of the stream. The dataset and the
// query stream come from two independent rngs so a shrink over ops keeps the
// dataset fixed.
func runLayoutDifferential(driver layoutKindDriver, cfg layoutDiffConfig, ops int, seed int64) error {
	const n = 600
	build := func(l Layout) (layoutProbe, error) {
		// Same seed per layout so both instances index identical data.
		return driver.build(rand.New(rand.NewSource(seed)), n, l, cfg)
	}
	sorted, err := build(LayoutSorted)
	if err != nil {
		return fmt.Errorf("build sorted: %w", err)
	}
	defer sorted.close()
	eytz, err := build(LayoutEytzinger)
	if err != nil {
		return fmt.Errorf("build eytzinger: %w", err)
	}
	defer eytz.close()

	qrng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for op := 0; op < ops; op++ {
		q := [4]int64{qrng.Int63n(2400), qrng.Int63n(2400), qrng.Int63n(2400), qrng.Int63n(2400)}
		sRes, sIO, err := sorted.query(q)
		if err != nil {
			return fmt.Errorf("op %d sorted query %v: %w", op, q, err)
		}
		eRes, eIO, err := eytz.query(q)
		if err != nil {
			return fmt.Errorf("op %d eytzinger query %v: %w", op, q, err)
		}
		if sRes != eRes {
			return fmt.Errorf("op %d query %v: results diverge across layouts\nsorted:    %s\neytzinger: %s", op, q, sRes, eRes)
		}
		if sIO != eIO {
			return fmt.Errorf("op %d query %v: touched-page counts diverge: sorted %d, eytzinger %d (Reads+CacheHits must be layout-invariant)", op, q, sIO, eIO)
		}
	}
	return nil
}

// shrinkLayoutDiff minimizes a failing stream by halving the op count while
// the divergence persists, then formats the smallest reproducer.
func shrinkLayoutDiff(t *testing.T, driver layoutKindDriver, cfg layoutDiffConfig, ops int, seed int64, err error) string {
	for ops/2 >= 5 && runLayoutDifferential(driver, cfg, ops/2, seed) != nil {
		ops /= 2
	}
	if rerr := runLayoutDifferential(driver, cfg, ops, seed); rerr != nil {
		err = rerr
	}
	return fmt.Sprintf(
		"%s/%s diverges across layouts at ops=%d seed=%d\n"+
			"reproduce: PC_LAYOUTDIFF_SEED=%d go test -run 'TestLayoutDifferential/%s/%s'\nerror: %v",
		driver.name, cfg.name, ops, seed, seed, driver.name, cfg.name, err)
}

func TestLayoutDifferential(t *testing.T) {
	for _, driver := range layoutDiffDrivers() {
		driver := driver
		t.Run(driver.name, func(t *testing.T) {
			for _, cfg := range layoutDiffConfigs() {
				cfg := cfg
				t.Run(cfg.name, func(t *testing.T) {
					for _, seed := range layoutDiffSeeds(t) {
						seed := seed
						t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
							t.Parallel()
							if err := runLayoutDifferential(driver, cfg, layoutDiffOps, seed); err != nil {
								t.Fatal(shrinkLayoutDiff(t, driver, cfg, layoutDiffOps, seed, err))
							}
						})
					}
				})
			}
		})
	}
}

// TestLayoutBatchDifferential drives the concurrent batch path under both
// layouts: worker goroutines share the sharded buffer pool and the
// prefetcher, so -race exercises the full async pipeline, and the merged
// results must agree exactly.
func TestLayoutBatchDifferential(t *testing.T) {
	for _, seed := range layoutDiffSeeds(t) {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			cfg := layoutDiffConfig{pool: 32, prefetch: 2}
			build := func(l Layout) *TwoSidedIndex {
				rng := rand.New(rand.NewSource(seed))
				ix, err := NewTwoSidedIndex(layoutDiffPoints(rng, 800), SchemeSegmented, layoutDiffOpts(l, cfg))
				if err != nil {
					t.Fatal(err)
				}
				return ix
			}
			sorted := build(LayoutSorted)
			defer sorted.Close()
			eytz := build(LayoutEytzinger)
			defer eytz.Close()

			qrng := rand.New(rand.NewSource(seed ^ 0xba7c4))
			qs := make([]TwoSidedQuery, 64)
			for i := range qs {
				qs[i] = TwoSidedQuery{A: qrng.Int63n(2400), B: qrng.Int63n(2400)}
			}
			sRes, _, err := sorted.QueryBatch(qs, 4)
			if err != nil {
				t.Fatalf("sorted batch: %v", err)
			}
			eRes, _, err := eytz.QueryBatch(qs, 4)
			if err != nil {
				t.Fatalf("eytzinger batch: %v", err)
			}
			for i := range qs {
				if fmt.Sprint(sRes[i]) != fmt.Sprint(eRes[i]) {
					t.Fatalf("batch query %d (%+v): results diverge across layouts\nsorted:    %v\neytzinger: %v",
						i, qs[i], sRes[i], eRes[i])
				}
			}
		})
	}
}
