package pathcache_test

import (
	"fmt"

	"pathcache"
)

// Build a static 2-sided index and query the top-right quadrant.
func ExampleNewTwoSidedIndex() {
	pts := []pathcache.Point{
		{X: 10, Y: 10, ID: 1},
		{X: 50, Y: 80, ID: 2},
		{X: 90, Y: 40, ID: 3},
		{X: 70, Y: 95, ID: 4},
	}
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented, nil)
	if err != nil {
		panic(err)
	}
	res, err := ix.Query(40, 50) // x >= 40 and y >= 50
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res), "points match")
	// Output: 2 points match
}

// Dynamic interval management: insert validity intervals, delete one, and
// ask who is valid at a time point.
func ExampleDynamicStabbingIndex() {
	idx, err := pathcache.NewDynamicStabbingIndex(nil)
	if err != nil {
		panic(err)
	}
	contracts := []pathcache.Interval{
		{Lo: 0, Hi: 100, ID: 1},
		{Lo: 50, Hi: 200, ID: 2},
		{Lo: 120, Hi: 300, ID: 3},
	}
	for _, c := range contracts {
		if err := idx.Insert(c); err != nil {
			panic(err)
		}
	}
	if err := idx.Delete(contracts[1]); err != nil {
		panic(err)
	}
	hits, err := idx.Stab(75)
	if err != nil {
		panic(err)
	}
	for _, h := range hits {
		fmt.Println("valid at 75: contract", h.ID)
	}
	// Output: valid at 75: contract 1
}

// 3-sided queries answer "instances of a class subtree with attribute above
// a threshold" after a preorder encoding of the hierarchy.
func ExampleNewThreeSidedIndex() {
	// Class ids 0..4; the subtree of class 1 occupies [1, 3].
	instances := []pathcache.Point{
		{X: 0, Y: 10, ID: 1},
		{X: 1, Y: 70, ID: 2},
		{X: 2, Y: 90, ID: 3},
		{X: 3, Y: 30, ID: 4},
		{X: 4, Y: 99, ID: 5},
	}
	ix, err := pathcache.NewThreeSidedIndex(instances, nil)
	if err != nil {
		panic(err)
	}
	res, err := ix.Query(1, 3, 50) // class in [1,3], attribute >= 50
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res), "instances")
	// Output: 2 instances
}

// The I/O profile shows the paper's accounting: useful page reads come back
// full of results, wasteful ones do not.
func ExampleTwoSidedIndex_QueryProfile() {
	pts := make([]pathcache.Point, 2000)
	for i := range pts {
		pts[i] = pathcache.Point{X: int64(i), Y: int64(i * 7 % 2000), ID: uint64(i + 1)}
	}
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeTwoLevel, nil)
	if err != nil {
		panic(err)
	}
	res, prof, err := ix.QueryProfile(1000, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res) == prof.Results)
	// Output: true
}

// General 4-sided window queries via the range-tree extension.
func ExampleNewWindowIndex() {
	pts := []pathcache.Point{
		{X: 10, Y: 10, ID: 1},
		{X: 50, Y: 80, ID: 2},
		{X: 90, Y: 40, ID: 3},
		{X: 70, Y: 95, ID: 4},
	}
	ix, err := pathcache.NewWindowIndex(pts, nil)
	if err != nil {
		panic(err)
	}
	res, err := ix.Query(40, 95, 30, 90) // 40<=x<=95, 30<=y<=90
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res), "points in the window")
	// Output: 2 points in the window
}
