package pathcache

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

func batchQueries2(n int, seed int64) []TwoSidedQuery {
	qs := workload.TwoSidedQueries(n, 100_000, 0.01, seed)
	out := make([]TwoSidedQuery, len(qs))
	for i, q := range qs {
		out[i] = TwoSidedQuery{A: q.A, B: q.B}
	}
	return out
}

// QueryBatch must return exactly the serial answers, in input order, for
// any worker count — including through a shared buffer pool. Run with -race.
func TestQueryBatchMatchesSerial(t *testing.T) {
	pts := uniformPoints(5_000, 100_000, 901)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512, BufferPoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries2(40, 903)
	want := make([][]Point, len(qs))
	for i, q := range qs {
		if want[i], err = ix.Query(q.A, q.B); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8, 0} {
		got, st, err := ix.QueryBatch(qs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch results differ from serial", workers)
		}
		if st.Queries != len(qs) {
			t.Fatalf("workers=%d: stats queries %d, want %d", workers, st.Queries, len(qs))
		}
		var q, r int
		for _, ws := range st.PerWorker {
			q += ws.Queries
			r += ws.Results
		}
		if q != st.Queries || r != st.Results {
			t.Fatalf("workers=%d: per-worker sums (%d,%d) != totals (%d,%d)",
				workers, q, r, st.Queries, st.Results)
		}
		total := 0
		for _, pts := range want {
			total += len(pts)
		}
		if st.Results != total {
			t.Fatalf("workers=%d: results %d, want %d", workers, st.Results, total)
		}
	}
}

// Per-worker query/result counts depend only on the input partition, never
// on scheduling: two executions with the same worker count report identical
// counts. Reads/Writes are exact attributions but not run-stable under a
// buffer pool (the first batch warms it), so they are checked for
// consistency with the batch totals instead.
func TestBatchPerWorkerStatsDeterministic(t *testing.T) {
	pts := uniformPoints(5_000, 100_000, 905)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512, BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries2(37, 907)
	_, st1, err := ix.QueryBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := ix.QueryBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	type partition struct{ Queries, Results int }
	part := func(ws []WorkerBatchStats) []partition {
		out := make([]partition, len(ws))
		for i, w := range ws {
			out[i] = partition{w.Queries, w.Results}
		}
		return out
	}
	if !reflect.DeepEqual(part(st1.PerWorker), part(st2.PerWorker)) {
		t.Fatalf("per-worker stats drifted between runs:\n%+v\n%+v", st1.PerWorker, st2.PerWorker)
	}
	if st1.Workers != 4 || len(st1.PerWorker) != 4 {
		t.Fatalf("workers = %d (%d per-worker entries), want 4", st1.Workers, len(st1.PerWorker))
	}
	for _, st := range []BatchStats{st1, st2} {
		var r, w int64
		for _, ws := range st.PerWorker {
			if ws.Reads < 0 || ws.Writes < 0 {
				t.Fatalf("negative per-worker I/O: %+v", ws)
			}
			r += ws.Reads
			w += ws.Writes
		}
		if r != st.Reads || w != st.Writes {
			t.Fatalf("per-worker I/O (%d,%d) does not sum to batch totals (%d,%d)",
				r, w, st.Reads, st.Writes)
		}
	}
}

// Every batch-capable index type answers identically to its serial path.
func TestBatchAllIndexTypes(t *testing.T) {
	pts := uniformPoints(3_000, 100_000, 911)
	ivs := uniformIntervals(3_000, 100_000, 5_000, 913)
	stabs := workload.StabQueries(24, 105_000, 915)

	three, err := NewThreeSidedIndex(pts, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	q3raw := workload.ThreeSidedQueries(24, 100_000, 0.2, 0.01, 917)
	q3 := make([]ThreeSidedQuery, len(q3raw))
	for i, q := range q3raw {
		q3[i] = ThreeSidedQuery{A1: q.A1, A2: q.A2, B: q.B}
	}
	want3 := make([][]Point, len(q3))
	for i, q := range q3 {
		if want3[i], err = three.Query(q.A1, q.A2, q.B); err != nil {
			t.Fatal(err)
		}
	}
	got3, st3, err := three.QueryBatch(q3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3, want3) {
		t.Fatal("3-sided batch differs from serial")
	}
	if st3.Reads == 0 {
		t.Fatal("3-sided batch reported zero reads")
	}

	seg, err := NewSegmentIndex(ivs, true, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	itv, err := NewIntervalIndex(ivs, true, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	stab, err := NewStabbingIndex(ivs, SchemeSegmented, &Options{PageSize: 512, BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	type stabber interface {
		Stab(int64) ([]Interval, error)
		StabBatch([]int64, int) ([][]Interval, BatchStats, error)
	}
	for name, ix := range map[string]stabber{"segment": seg, "interval": itv, "stabbing": stab} {
		want := make([][]Interval, len(stabs))
		for i, q := range stabs {
			if want[i], err = ix.Stab(q); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		got, _, err := ix.StabBatch(stabs, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: batch differs from serial", name)
		}
	}

	rng, err := NewRangeIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:1_000] {
		if err := rng.Insert(p.X, p.ID); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]int64, 50)
	for i := range keys {
		keys[i] = pts[i*3].X
	}
	wantR := make([][]uint64, len(keys))
	for i, k := range keys {
		if wantR[i], err = rng.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	gotR, stR, err := rng.SearchBatch(keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotR, wantR) {
		t.Fatal("range batch differs from serial")
	}
	if stR.Workers != 7 {
		t.Fatalf("range batch workers = %d, want 7", stR.Workers)
	}
}

// Worker counts clamp: more workers than queries collapses to one worker
// per query, and an empty batch is a no-op.
func TestBatchWorkerClamping(t *testing.T) {
	pts := uniformPoints(500, 10_000, 921)
	ix, err := NewTwoSidedIndex(pts, SchemeBasic, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries2(3, 923)
	_, st, err := ix.QueryBatch(qs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 {
		t.Fatalf("workers = %d, want 3 (clamped to query count)", st.Workers)
	}
	out, st0, err := ix.QueryBatch(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st0.Queries != 0 || st0.Results != 0 {
		t.Fatalf("empty batch: out=%d stats=%+v", len(out), st0)
	}
}

// A failing query surfaces as an error naming the smallest failing query
// index, regardless of scheduling, and the index stays usable afterwards.
func TestBatchErrorPropagation(t *testing.T) {
	var fp *disk.FaultPager
	opts := &Options{PageSize: 512, WrapPager: func(p disk.Pager) disk.Pager {
		fp = disk.NewFaultPager(p, 1<<40)
		return fp
	}}
	pts := uniformPoints(2_000, 100_000, 925)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, opts)
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries2(16, 927)
	want, _, err := ix.QueryBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	fp.SetBudget(3)
	if _, _, err := ix.QueryBatch(qs, 4); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("starved batch: err=%v, want ErrInjected", err)
	}
	fp.SetBudget(1 << 40)
	got, _, err := ix.QueryBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results changed after failed batch")
	}
}

// Two batches running concurrently over one shared index must each report
// exactly the I/O they caused: per-worker counts are non-negative and sum
// to their batch's totals, and the two batches' totals together account for
// the store-level counter movement over the window — the op-counter
// attribution invariant. The old implementation diffed the global counters
// per batch, so concurrent batches double-counted each other's I/O. Run
// with -race.
func TestConcurrentBatchesExactIO(t *testing.T) {
	for _, pool := range []int{0, 32} {
		t.Run(fmt.Sprintf("pool=%d", pool), func(t *testing.T) {
			pts := uniformPoints(5_000, 100_000, 931)
			ix, err := NewTwoSidedIndex(pts, SchemeSegmented,
				&Options{PageSize: 512, BufferPoolPages: pool})
			if err != nil {
				t.Fatal(err)
			}
			qsA := batchQueries2(40, 933)
			qsB := batchQueries2(40, 935)

			before := ix.Stats()
			var stA, stB BatchStats
			var errA, errB error
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); _, stA, errA = ix.QueryBatch(qsA, 4) }()
			go func() { defer wg.Done(); _, stB, errB = ix.QueryBatch(qsB, 4) }()
			wg.Wait()
			if errA != nil || errB != nil {
				t.Fatalf("batch errors: %v / %v", errA, errB)
			}
			after := ix.Stats()

			for name, st := range map[string]BatchStats{"A": stA, "B": stB} {
				var r, w int64
				for _, ws := range st.PerWorker {
					if ws.Reads < 0 || ws.Writes < 0 {
						t.Fatalf("batch %s: negative per-worker I/O: %+v", name, ws)
					}
					r += ws.Reads
					w += ws.Writes
				}
				if r != st.Reads || w != st.Writes {
					t.Fatalf("batch %s: per-worker I/O (%d,%d) != batch totals (%d,%d)",
						name, r, w, st.Reads, st.Writes)
				}
			}

			dr := after.Reads - before.Reads
			dw := after.Writes - before.Writes
			if got := stA.Reads + stB.Reads; got != dr {
				t.Fatalf("attributed reads %d (A=%d B=%d) != store diff %d",
					got, stA.Reads, stB.Reads, dr)
			}
			if got := stA.Writes + stB.Writes; got != dw {
				t.Fatalf("attributed writes %d (A=%d B=%d) != store diff %d",
					got, stA.Writes, stB.Writes, dw)
			}
			if pool == 0 && stA.Reads == 0 {
				t.Fatal("uncached batch A reported zero reads")
			}

			// The metric series carry the same attribution: batch queries
			// are the only ops recorded with a real worker tag, and their
			// per-op read histograms must sum to the same store diff the
			// counters rebuilt above.
			var mOps, mReads, mWrites int64
			for _, s := range ix.Metrics().Ops {
				if s.Worker < 0 {
					continue // serial series: the build
				}
				if s.Kind != "twosided" || s.Name != "query" {
					t.Fatalf("unexpected worker series %s/%s", s.Kind, s.Name)
				}
				mOps += s.Ops
				mReads += s.Reads.Sum
				mWrites += s.Writes.Sum
			}
			if want := int64(len(qsA) + len(qsB)); mOps != want {
				t.Fatalf("worker series record %d ops, want %d", mOps, want)
			}
			if mReads != dr || mWrites != dw {
				t.Fatalf("per-op histogram I/O (%d,%d) != store diff (%d,%d)",
					mReads, mWrites, dr, dw)
			}
		})
	}
}

// QueryProfile's Reads/Writes come from an op-scoped counter: serially they
// must match the store-level movement of the same query exactly.
func TestQueryProfileCountsOpIO(t *testing.T) {
	pts := uniformPoints(3_000, 100_000, 941)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Stats()
	_, prof, err := ix.QueryProfile(50_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	after := ix.Stats()
	if prof.Reads != after.Reads-before.Reads {
		t.Fatalf("profile reads %d != store diff %d", prof.Reads, after.Reads-before.Reads)
	}
	if prof.Writes != 0 {
		t.Fatalf("read-only query reported %d writes", prof.Writes)
	}
	if prof.Reads == 0 {
		t.Fatal("uncached profile reported zero reads")
	}
}
