package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from current output")

// TestGoldenOutput replays a fixed script of pcindex invocations over the
// checked-in fixtures and compares the concatenated stdout against
// testdata/golden.txt byte for byte. It pins the whole user-visible
// contract at once — result sets, result order, page-read counts, info
// formatting — so any behavior drift in the index layers or the CLI shows
// up as a readable diff. Regenerate intentionally with `make golden`, i.e.:
//
//	go test ./cmd/pcindex -run TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tool")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	ptsCSV, err := filepath.Abs(filepath.Join("testdata", "points.csv"))
	if err != nil {
		t.Fatal(err)
	}
	ivsCSV, err := filepath.Abs(filepath.Join("testdata", "intervals.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Index files live in a temp dir; every occurrence of either directory
	// in the output is normalized so the transcript is machine-independent.
	script := [][]string{
		{"build", "-type", "twosided", "-scheme", "segmented", "-in", ptsCSV, "-out", filepath.Join(dir, "two.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "two.pc")},
		{"query", "-in", filepath.Join(dir, "two.pc"), "-q", "30 30"},
		{"query", "-in", filepath.Join(dir, "two.pc"), "-q", "30 30", "-limit", "2"},
		{"build", "-type", "twosided", "-scheme", "iko", "-in", ptsCSV, "-out", filepath.Join(dir, "iko.pc"), "-page", "512"},
		{"query", "-in", filepath.Join(dir, "iko.pc"), "-q", "30 30"},
		// The Eytzinger layout must answer byte-identically with identical
		// page reads: this build/info/query triple pins that next to the
		// sorted transcript above, and reopen dispatches on the header byte.
		{"build", "-type", "twosided", "-scheme", "segmented", "-layout", "eytzinger", "-in", ptsCSV, "-out", filepath.Join(dir, "twoe.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "twoe.pc")},
		{"query", "-in", filepath.Join(dir, "twoe.pc"), "-q", "30 30"},
		{"build", "-type", "threeside", "-in", ptsCSV, "-out", filepath.Join(dir, "three.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "three.pc")},
		{"query", "-in", filepath.Join(dir, "three.pc"), "-q", "20 70 40"},
		{"build", "-type", "stabbing", "-in", ivsCSV, "-out", filepath.Join(dir, "stab.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "stab.pc")},
		{"query", "-in", filepath.Join(dir, "stab.pc"), "-q", "33"},
		{"build", "-type", "segment", "-in", ivsCSV, "-out", filepath.Join(dir, "seg.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "seg.pc")},
		{"query", "-in", filepath.Join(dir, "seg.pc"), "-q", "33"},
		{"build", "-type", "interval", "-in", ivsCSV, "-out", filepath.Join(dir, "itv.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "itv.pc")},
		{"query", "-in", filepath.Join(dir, "itv.pc"), "-q", "33"},
		{"build", "-type", "window", "-in", ptsCSV, "-out", filepath.Join(dir, "win.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "win.pc")},
		{"query", "-in", filepath.Join(dir, "win.pc"), "-q", "20 70 30 80"},
		{"build", "-type", "lsm", "-base", "twosided", "-memtable", "8", "-in", ptsCSV, "-out", filepath.Join(dir, "dyn.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "dyn.pc")},
		{"query", "-in", filepath.Join(dir, "dyn.pc"), "-q", "30 30"},
		{"build", "-type", "lsm", "-base", "stabbing", "-memtable", "8", "-in", ivsCSV, "-out", filepath.Join(dir, "dynstab.pc"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "dynstab.pc")},
		{"query", "-in", filepath.Join(dir, "dynstab.pc"), "-q", "33"},
		{"build", "-type", "twosided", "-scheme", "segmented", "-shards", "3", "-in", ptsCSV, "-out", filepath.Join(dir, "two.shards"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "two.shards")},
		{"query", "-in", filepath.Join(dir, "two.shards"), "-q", "30 30"},
		{"build", "-type", "stabbing", "-shards", "2", "-in", ivsCSV, "-out", filepath.Join(dir, "stab.shards"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "stab.shards")},
		{"query", "-in", filepath.Join(dir, "stab.shards"), "-q", "33"},
		{"build", "-type", "lsm", "-base", "twosided", "-memtable", "8", "-shards", "2", "-in", ptsCSV, "-out", filepath.Join(dir, "dyn.shards"), "-page", "512"},
		{"info", "-in", filepath.Join(dir, "dyn.shards")},
		{"query", "-in", filepath.Join(dir, "dyn.shards"), "-q", "30 30"},
		{"verify", "-in", filepath.Join(dir, "two.pc")},
		{"verify", "-in", filepath.Join(dir, "two.shards")},
		{"verify", "-in", filepath.Join(dir, "seg.pc")},
		{"verify", "-in", filepath.Join(dir, "dyn.pc")},
		{"stats", "-in", filepath.Join(dir, "two.pc")},
		{"stats", "-in", filepath.Join(dir, "three.pc")},
		{"stats", "-in", filepath.Join(dir, "stab.pc")},
		{"stats", "-in", filepath.Join(dir, "seg.pc")},
		{"stats", "-in", filepath.Join(dir, "itv.pc")},
		{"stats", "-in", filepath.Join(dir, "win.pc")},
		{"stats", "-in", filepath.Join(dir, "dyn.pc")},
		{"stats", "-in", filepath.Join(dir, "dynstab.pc")},
		{"stats", "-in", filepath.Join(dir, "two.shards")},
		{"stats", "-serve", "-in", filepath.Join(dir, "two.pc")},
		{"stats", "-serve", "-in", filepath.Join(dir, "dyn.pc")},
	}

	var b strings.Builder
	for _, args := range script {
		fmt.Fprintf(&b, "$ pcindex %s\n", strings.Join(normalize(args, dir, filepath.Dir(ptsCSV)), " "))
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("pcindex %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		b.Write(out)
	}
	got := strings.Join(normalize([]string{b.String()}, dir, filepath.Dir(ptsCSV)), "")

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if the change is intended):\n%s",
			goldenPath, diffLines(string(want), got))
	}
}

// normalize rewrites machine-specific directories to stable placeholders.
func normalize(ss []string, workDir, dataDir string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		s = strings.ReplaceAll(s, workDir, "$WORK")
		s = strings.ReplaceAll(s, dataDir, "$DATA")
		out[i] = s
	}
	return out
}

// diffLines renders a minimal line-oriented diff, enough to see what moved.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
	}
	return b.String()
}
