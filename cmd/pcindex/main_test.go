package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles pcindex once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pcindex")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("pcindex %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestBuildQueryInfoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tool")
	}
	bin := buildTool(t)
	dir := t.TempDir()

	// Points CSV: the three points with x>=10 and y>=10 are ids 2,3.
	ptsCSV := filepath.Join(dir, "pts.csv")
	if err := os.WriteFile(ptsCSV, []byte("1,1,1\n10,20,2\n30,40,3\n50,5,4\n# comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ivsCSV := filepath.Join(dir, "ivs.csv")
	if err := os.WriteFile(ivsCSV, []byte("0,100,1\n50,150,2\n200,300,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	twoPC := filepath.Join(dir, "two.pc")
	out := run(t, bin, "build", "-type", "twosided", "-in", ptsCSV, "-out", twoPC, "-page", "512")
	if !strings.Contains(out, "4 points") {
		t.Fatalf("build output: %s", out)
	}
	out = run(t, bin, "query", "-in", twoPC, "-q", "10 10")
	if !strings.Contains(out, "2 results") {
		t.Fatalf("query output: %s", out)
	}
	out = run(t, bin, "info", "-in", twoPC)
	if !strings.Contains(out, "records: 4") || !strings.Contains(out, "kind: twosided") {
		t.Fatalf("info output: %s", out)
	}

	threePC := filepath.Join(dir, "three.pc")
	run(t, bin, "build", "-type", "threeside", "-in", ptsCSV, "-out", threePC, "-page", "512")
	out = run(t, bin, "query", "-in", threePC, "-q", "5 40 10")
	if !strings.Contains(out, "2 results") {
		t.Fatalf("3-sided query output: %s", out)
	}

	for _, typ := range []string{"stabbing", "segment", "interval"} {
		pc := filepath.Join(dir, typ+".pc")
		run(t, bin, "build", "-type", typ, "-in", ivsCSV, "-out", pc, "-page", "512")
		out = run(t, bin, "query", "-in", pc, "-q", "75")
		if !strings.Contains(out, "2 results") {
			t.Fatalf("%s query output: %s", typ, out)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tool")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("1,notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "build", "-type", "twosided", "-in", bad, "-out", filepath.Join(dir, "x.pc")).CombinedOutput(); err == nil {
		t.Fatalf("bad CSV accepted: %s", out)
	}
	if out, err := exec.Command(bin, "query", "-in", filepath.Join(dir, "missing.pc"), "-q", "1 2").CombinedOutput(); err == nil {
		t.Fatalf("missing index accepted: %s", out)
	}
	if out, err := exec.Command(bin, "nonsense").CombinedOutput(); err == nil {
		t.Fatalf("unknown subcommand accepted: %s", out)
	}
}

func TestWindowTypeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the tool")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	ptsCSV := filepath.Join(dir, "pts.csv")
	if err := os.WriteFile(ptsCSV, []byte("1,1,1\n10,20,2\n30,40,3\n50,5,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pc := filepath.Join(dir, "win.pc")
	out := run(t, bin, "build", "-type", "window", "-in", ptsCSV, "-out", pc, "-page", "512")
	if !strings.Contains(out, "4-sided window") {
		t.Fatalf("build output: %s", out)
	}
	out = run(t, bin, "query", "-in", pc, "-q", "5 40 10 45")
	if !strings.Contains(out, "2 results") {
		t.Fatalf("window query output: %s", out)
	}
	out = run(t, bin, "info", "-in", pc)
	if !strings.Contains(out, "kind: window") {
		t.Fatalf("info output: %s", out)
	}
}
