// Command pcindex builds, inspects and queries persistent pathcache index
// files.
//
// Build an index from CSV (points: x,y,id — intervals: lo,hi,id):
//
//	pcindex build -type twosided  -scheme segmented -in points.csv   -out pts.pc
//	pcindex build -type threeside -in points.csv    -out pts3.pc
//	pcindex build -type stabbing  -in intervals.csv -out ivs.pc
//	pcindex build -type segment   -in intervals.csv -out seg.pc
//	pcindex build -type interval  -in intervals.csv -out itv.pc
//
// Build a dynamic (LSM write tier) index over any base kind — interval
// bases take interval CSV, point bases take point CSV:
//
//	pcindex build -type lsm -base twosided -memtable 8 -in points.csv    -out dyn.pc
//	pcindex build -type lsm -base stabbing -memtable 8 -in intervals.csv -out dynstab.pc
//
// Build a sharded store (-out becomes a directory holding one file per
// shard plus the shard-map manifest; query/info/stats/verify take the
// directory):
//
//	pcindex build -type twosided -shards 3 -in points.csv -out pts.shards
//
// Query it (reopens without rebuilding):
//
//	pcindex query -in pts.pc  -q "100 200"        # x >= 100, y >= 200
//	pcindex query -in pts3.pc -q "100 500 200"    # 100 <= x <= 500, y >= 200
//	pcindex query -in ivs.pc  -q "150"            # intervals containing 150
//
// Inspect:
//
//	pcindex info -in pts.pc
//
// Metrics (runs one deterministic probe query, then prints the per-op
// metric series the store recorded — read/write/hit histograms and the
// worst theorem-bound ratio; durations are intentionally not printed so
// the output stays golden-testable):
//
//	pcindex stats -in pts.pc
//
// With -serve the same snapshot is rendered in the text exposition format
// a running pcserve publishes on /metrics, so the golden transcript pins
// the server-side series names and exact counts without booting a listener:
//
//	pcindex stats -serve -in pts.pc
//
// Check integrity (every page and free-list stub against its checksum —
// the post-crash health check):
//
//	pcindex verify -in pts.pc
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pathcache"
	"pathcache/internal/engine"
	"pathcache/internal/server"
	"pathcache/internal/shard"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcindex:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pcindex build|query|info|stats|verify [flags] (see -h per subcommand)")
	fmt.Fprintln(os.Stderr, "")
	fmt.Fprintln(os.Stderr, "The CLI's output is pinned by a golden transcript; after an intentional")
	fmt.Fprintln(os.Stderr, "output change, regenerate it with `make golden` (equivalently:")
	fmt.Fprintln(os.Stderr, "`go test ./cmd/pcindex -run TestGoldenOutput -update`) and review the diff.")
	os.Exit(2)
}

// opened is a kind-agnostically reopened index: the interface handle for
// the shared operations plus the one concrete pointer matching its kind,
// filled in by a type switch over what pathcache.Open returned.
type opened struct {
	ix      pathcache.Index
	kind    string
	two     *pathcache.TwoSidedIndex
	three   *pathcache.ThreeSidedIndex
	stab    *pathcache.StabbingIndex
	seg     *pathcache.SegmentIndex
	itv     *pathcache.IntervalIndex
	win     *pathcache.WindowIndex
	lsm     *pathcache.LSMIndex
	sharded *pathcache.Sharded
}

func openAny(path string) (*opened, error) {
	ix, err := pathcache.Open(path)
	if err != nil {
		return nil, err
	}
	o := &opened{ix: ix, kind: ix.Kind()}
	switch v := ix.(type) {
	case *pathcache.TwoSidedIndex:
		o.two = v
	case *pathcache.ThreeSidedIndex:
		o.three = v
	case *pathcache.StabbingIndex:
		o.stab = v
	case *pathcache.SegmentIndex:
		o.seg = v
	case *pathcache.IntervalIndex:
		o.itv = v
	case *pathcache.WindowIndex:
		o.win = v
	case *pathcache.LSMIndex:
		o.lsm = v
	case *pathcache.Sharded:
		o.sharded = v
	default:
		ix.Close()
		return nil, fmt.Errorf("%s: unsupported index kind %q", path, ix.Kind())
	}
	return o, nil
}

func (o *opened) close() {
	o.ix.Close()
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	typ := fs.String("type", "twosided", "twosided|threeside|stabbing|segment|interval|window|lsm")
	scheme := fs.String("scheme", "segmented", "iko|basic|segmented (flat 2-sided schemes persist)")
	base := fs.String("base", "twosided", "lsm only: base kind the sealed levels are built with")
	memtable := fs.Int("memtable", 0, "lsm only: updates per memtable flush (0 = default)")
	in := fs.String("in", "", "input CSV (points: x,y,id — intervals: lo,hi,id)")
	out := fs.String("out", "", "output index file (a directory with -shards)")
	page := fs.Int("page", pathcache.DefaultPageSize, "page size in bytes")
	layoutName := fs.String("layout", "sorted", "in-page entry layout: sorted|eytzinger")
	shards := fs.Int("shards", 1, "shard count; >= 2 builds a sharded store under -out")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("build requires -in and -out")
	}
	var layout pathcache.Layout
	switch *layoutName {
	case "sorted":
		layout = pathcache.LayoutSorted
	case "eytzinger":
		layout = pathcache.LayoutEytzinger
	default:
		return fmt.Errorf("unknown layout %q (use sorted or eytzinger)", *layoutName)
	}
	opts := &pathcache.Options{PageSize: *page, Path: *out, Layout: layout}
	var sc pathcache.Scheme
	switch *scheme {
	case "iko":
		sc = pathcache.SchemeIKO
	case "basic":
		sc = pathcache.SchemeBasic
	case "segmented":
		sc = pathcache.SchemeSegmented
	default:
		return fmt.Errorf("scheme %q does not persist (use iko, basic or segmented)", *scheme)
	}

	if *shards >= 2 {
		return buildSharded(*typ, *base, *in, *out, pathcache.ShardPlan{Shards: *shards, Scheme: sc, Base: *base},
			&pathcache.Options{PageSize: *page, MemtableEntries: *memtable, Layout: layout})
	}

	switch *typ {
	case "lsm":
		// The dynamic write tier: records are seeded through the WAL and
		// sealed into one static level of the chosen base kind. Interval
		// bases take interval CSV and store the diagonal-corner encoding.
		var pts []pathcache.Point
		switch *base {
		case "stabbing", "segment", "interval":
			ivs, err := readIntervals(*in)
			if err != nil {
				return err
			}
			pts = make([]pathcache.Point, len(ivs))
			for i, iv := range ivs {
				pts[i] = pathcache.IntervalToDynamicPoint(iv)
			}
		default:
			var err error
			pts, err = readPoints(*in)
			if err != nil {
				return err
			}
		}
		opts.MemtableEntries = *memtable
		ix, err := pathcache.BuildDynamic(*base, pts, opts)
		if err != nil {
			return err
		}
		fmt.Printf("built %s: %d records, %d pages (lsm over %s, %d levels)\n",
			*out, ix.Len(), ix.Pages(), ix.Base(), len(ix.Levels()))
		return ix.Close()
	case "window":
		pts, err := readPoints(*in)
		if err != nil {
			return err
		}
		ix, err := pathcache.NewWindowIndex(pts, opts)
		if err != nil {
			return err
		}
		fmt.Printf("built %s: %d points, %d pages (4-sided window)\n", *out, ix.Len(), ix.Pages())
		return ix.Close()
	case "twosided", "threeside":
		pts, err := readPoints(*in)
		if err != nil {
			return err
		}
		if *typ == "twosided" {
			ix, err := pathcache.NewTwoSidedIndex(pts, sc, opts)
			if err != nil {
				return err
			}
			fmt.Printf("built %s: %d points, %d pages (%s scheme)\n", *out, ix.Len(), ix.Pages(), sc)
			return ix.Close()
		}
		ix, err := pathcache.NewThreeSidedIndex(pts, opts)
		if err != nil {
			return err
		}
		fmt.Printf("built %s: %d points, %d pages (3-sided)\n", *out, ix.Len(), ix.Pages())
		return ix.Close()
	case "stabbing", "segment", "interval":
		ivs, err := readIntervals(*in)
		if err != nil {
			return err
		}
		switch *typ {
		case "stabbing":
			ix, err := pathcache.NewStabbingIndex(ivs, sc, opts)
			if err != nil {
				return err
			}
			fmt.Printf("built %s: %d intervals, %d pages (stabbing/%s)\n", *out, ix.Len(), ix.Pages(), sc)
			return ix.Close()
		case "segment":
			ix, err := pathcache.NewSegmentIndex(ivs, true, opts)
			if err != nil {
				return err
			}
			fmt.Printf("built %s: %d intervals, %d pages (segment tree)\n", *out, ix.Len(), ix.Pages())
			return ix.Close()
		default:
			ix, err := pathcache.NewIntervalIndex(ivs, true, opts)
			if err != nil {
				return err
			}
			fmt.Printf("built %s: %d intervals, %d pages (interval tree)\n", *out, ix.Len(), ix.Pages())
			return ix.Close()
		}
	default:
		return fmt.Errorf("unknown type %q", *typ)
	}
}

// buildSharded builds a range-partitioned store under dir: one index file
// per shard plus the shard-map manifest.
func buildSharded(typ, base, in, dir string, plan pathcache.ShardPlan, opts *pathcache.Options) error {
	var s *pathcache.Sharded
	var err error
	switch typ {
	case "stabbing", "segment", "interval":
		var ivs []pathcache.Interval
		if ivs, err = readIntervals(in); err != nil {
			return err
		}
		s, err = pathcache.BuildShardedIntervals(dir, typ, ivs, plan, opts)
	case "lsm":
		var pts []pathcache.Point
		switch base {
		case "stabbing", "segment", "interval":
			ivs, err := readIntervals(in)
			if err != nil {
				return err
			}
			pts = make([]pathcache.Point, len(ivs))
			for i, iv := range ivs {
				pts[i] = pathcache.IntervalToDynamicPoint(iv)
			}
		default:
			if pts, err = readPoints(in); err != nil {
				return err
			}
		}
		s, err = pathcache.BuildShardedPoints(dir, typ, pts, plan, opts)
	default:
		var pts []pathcache.Point
		if pts, err = readPoints(in); err != nil {
			return err
		}
		s, err = pathcache.BuildShardedPoints(dir, typ, pts, plan, opts)
	}
	if err != nil {
		return err
	}
	what := s.ContentKind()
	if b := s.Base(); b != "" {
		what += " over " + b
	}
	fmt.Printf("built %s: %d records, %d pages (%d shards of %s)\n",
		dir, s.Len(), s.Pages(), s.NumShards(), what)
	return s.Close()
}

// shardReads sums the per-shard profiles of one scatter-gathered query.
func shardReads(profs []pathcache.ShardProfile) int64 {
	var n int64
	for _, p := range profs {
		n += p.Reads
	}
	return n
}

// shardedQueryKind names the query shape a sharded store answers: its
// content kind, with "lsm" resolved through its base.
func shardedQueryKind(s *pathcache.Sharded) string {
	if s.ContentKind() != "lsm" {
		return s.ContentKind()
	}
	switch s.Base() {
	case "stabbing", "segment", "interval":
		return "stabbing"
	default:
		return "twosided"
	}
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "index file")
	q := fs.String("q", "", "query: 'a b' (2-sided), 'a1 a2 b' (3-sided), 'q' (stabbing)")
	limit := fs.Int("limit", 20, "max rows to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *q == "" {
		return fmt.Errorf("query requires -in and -q")
	}
	nums, err := parseInts(*q)
	if err != nil {
		return err
	}
	o, err := openAny(*in)
	if err != nil {
		return err
	}
	defer o.close()

	printPts := func(pts []pathcache.Point, reads int64) {
		fmt.Printf("%d results in %d page reads\n", len(pts), reads)
		for i, p := range pts {
			if *limit > 0 && i >= *limit {
				fmt.Printf("... (%d more)\n", len(pts)-i)
				break
			}
			fmt.Printf("x=%d y=%d id=%d\n", p.X, p.Y, p.ID)
		}
	}
	printIvs := func(ivs []pathcache.Interval, reads int64) {
		fmt.Printf("%d results in %d page reads\n", len(ivs), reads)
		for i, iv := range ivs {
			if *limit > 0 && i >= *limit {
				fmt.Printf("... (%d more)\n", len(ivs)-i)
				break
			}
			fmt.Printf("lo=%d hi=%d id=%d\n", iv.Lo, iv.Hi, iv.ID)
		}
	}

	// Profile variants report the page reads this one operation caused via
	// an op-scoped counter, rather than diffing the store-global stats.
	switch o.kind {
	case "twosided":
		if len(nums) != 2 {
			return fmt.Errorf("2-sided query needs 'a b'")
		}
		res, prof, err := o.two.QueryProfile(nums[0], nums[1])
		if err != nil {
			return err
		}
		printPts(res, prof.Reads)
	case "threeside":
		if len(nums) != 3 {
			return fmt.Errorf("3-sided query needs 'a1 a2 b'")
		}
		res, prof, err := o.three.QueryProfile(nums[0], nums[1], nums[2])
		if err != nil {
			return err
		}
		printPts(res, prof.Reads)
	case "stabbing":
		if len(nums) != 1 {
			return fmt.Errorf("stabbing query needs 'q'")
		}
		res, prof, err := o.stab.StabProfile(nums[0])
		if err != nil {
			return err
		}
		printIvs(res, prof.Reads)
	case "segment":
		if len(nums) != 1 {
			return fmt.Errorf("stabbing query needs 'q'")
		}
		res, prof, err := o.seg.StabProfile(nums[0])
		if err != nil {
			return err
		}
		printIvs(res, prof.Reads)
	case "interval":
		if len(nums) != 1 {
			return fmt.Errorf("stabbing query needs 'q'")
		}
		res, prof, err := o.itv.StabProfile(nums[0])
		if err != nil {
			return err
		}
		printIvs(res, prof.Reads)
	case "window":
		if len(nums) != 4 {
			return fmt.Errorf("window query needs 'x1 x2 y1 y2'")
		}
		res, prof, err := o.win.QueryProfile(nums[0], nums[1], nums[2], nums[3])
		if err != nil {
			return err
		}
		printPts(res, prof.Reads)
	case "lsm":
		// The write tier answers the base kind's shape: 'a b' runs the
		// 2-sided query of a point base, 'q' the stab of an interval base.
		switch len(nums) {
		case 2:
			res, prof, err := o.lsm.Query(nums[0], nums[1])
			if err != nil {
				return err
			}
			printPts(res, prof.Reads)
		case 1:
			res, prof, err := o.lsm.Stab(nums[0])
			if err != nil {
				return err
			}
			printIvs(res, prof.Reads)
		default:
			return fmt.Errorf("lsm query needs 'a b' (2-sided) or 'q' (stabbing)")
		}
	case "shard":
		// The scatter-gather path: the shape follows the content kind, and
		// the printed read count sums every consulted shard's profile.
		s := o.sharded
		switch shardedQueryKind(s) {
		case "twosided":
			if len(nums) != 2 {
				return fmt.Errorf("2-sided query needs 'a b'")
			}
			res, profs, err := s.QueryProfile(nums[0], nums[1])
			if err != nil {
				return err
			}
			printPts(res, shardReads(profs))
		case "threeside":
			if len(nums) != 3 {
				return fmt.Errorf("3-sided query needs 'a1 a2 b'")
			}
			res, profs, err := s.QueryThreeSidedProfile(nums[0], nums[1], nums[2])
			if err != nil {
				return err
			}
			printPts(res, shardReads(profs))
		case "window":
			if len(nums) != 4 {
				return fmt.Errorf("window query needs 'x1 x2 y1 y2'")
			}
			res, profs, err := s.WindowQueryProfile(nums[0], nums[1], nums[2], nums[3])
			if err != nil {
				return err
			}
			printPts(res, shardReads(profs))
		default:
			if len(nums) != 1 {
				return fmt.Errorf("stabbing query needs 'q'")
			}
			res, profs, err := s.StabProfile(nums[0])
			if err != nil {
				return err
			}
			printIvs(res, shardReads(profs))
		}
	}
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "index file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info requires -in")
	}
	o, err := openAny(*in)
	if err != nil {
		return err
	}
	defer o.close()
	// The registry kind name is the stable identifier; the 2-sided kind
	// additionally reports which flat scheme the file persists, and the
	// write tier reports its manifest: base kind, memtable and tombstone
	// backlog, and one line per sealed level.
	switch o.kind {
	case "twosided":
		fmt.Printf("kind: %s (%s scheme)\n", o.kind, o.two.Scheme())
	case "lsm":
		fmt.Printf("kind: %s (over %s)\n", o.kind, o.lsm.Base())
	case "shard":
		what := o.sharded.ContentKind()
		if b := o.sharded.Base(); b != "" {
			what += " over " + b
		}
		fmt.Printf("kind: %s (%d shards of %s, epoch %d)\n", o.kind, o.sharded.NumShards(), what, o.sharded.Epoch())
	default:
		fmt.Printf("kind: %s\n", o.kind)
	}
	// Persisted single-tree kinds self-describe their in-page layout (the
	// header byte dispatch); the LSM tier may mix layouts per level and the
	// sharded router delegates to its shards, so neither exposes one.
	if l, ok := o.ix.(interface{ Layout() pathcache.Layout }); ok {
		fmt.Printf("layout: %s\n", l.Layout())
	}
	fmt.Printf("records: %d\npages: %d\n", o.ix.Len(), o.ix.Pages())
	if o.kind == "lsm" {
		fmt.Printf("memtable: %d entries\ntombstones: %d\n", o.lsm.MemtableLen(), o.lsm.TombCount())
		for _, lv := range o.lsm.Levels() {
			fmt.Printf("level %d: %d records (%d tree + %d data + %d bloom pages)\n",
				lv.Slot, lv.Records, lv.TreePages, lv.DataPages, lv.BloomPages)
		}
	}
	if o.kind == "shard" {
		for _, info := range o.sharded.Shards() {
			fmt.Printf("shard %d: %s records=%d pages=%d range=%s\n",
				info.Shard, info.File, info.Len, info.Pages, keyRange(info.Lo, info.Hi))
		}
	}
	return nil
}

// keyRange renders a shard's half-open routing-key range, with the
// unbounded ends spelled out.
func keyRange(lo, hi int64) string {
	l, h := "-inf", "+inf"
	if lo != math.MinInt64 {
		l = strconv.FormatInt(lo, 10)
	}
	if hi != math.MaxInt64 {
		h = strconv.FormatInt(hi, 10)
	}
	return fmt.Sprintf("[%s,%s)", l, h)
}

// runStats reopens an index, runs one deterministic full-range probe for
// its kind, and pretty-prints the resulting Metrics snapshot. Only
// deterministic fields are printed — series identity, op/result counts,
// the I/O histograms, and the max bound ratio — never durations, so the
// output is stable under the golden transcript.
func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "index file")
	serve := fs.Bool("serve", false, "render the snapshot in pcserve's /metrics exposition format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats requires -in")
	}
	o, err := openAny(*in)
	if err != nil {
		return err
	}
	defer o.close()

	results, err := probe(o)
	if err != nil {
		return err
	}
	m := o.ix.Metrics()
	if *serve {
		server.WriteIndexMetrics(os.Stdout, m)
		return nil
	}
	fmt.Printf("kind: %s\nprobe: %d results\n", o.kind, results)
	fmt.Printf("inflight: %d\nseries: %d\n", m.Inflight, len(m.Ops))
	for _, s := range m.Ops {
		// Series from a sharded store carry the recording shard; single-store
		// series print exactly as before.
		tag := ""
		if s.Shard != pathcache.NoShard {
			tag = fmt.Sprintf(" shard=%d", s.Shard)
		}
		fmt.Printf("op %s/%s worker=%s%s: ops=%d results=%d\n",
			s.Kind, s.Name, workerLabel(s.Worker), tag, s.Ops, s.Results)
		fmt.Printf("  reads:  %s\n", histLine(s.Reads))
		fmt.Printf("  writes: %s\n", histLine(s.Writes))
		fmt.Printf("  hits:   %s\n", histLine(s.CacheHits))
		fmt.Printf("  bound:  max-ratio=%.2f\n", s.MaxBoundRatio)
	}
	return nil
}

// probe runs the stats subcommand's deterministic query for the index's
// kind: a full-range query for the point kinds, a stab at 0 for the
// interval kinds. The exact query does not matter — it only has to be the
// same on every machine so the recorded I/O is too.
func probe(o *opened) (int, error) {
	const lo, hi = math.MinInt64, math.MaxInt64
	switch o.kind {
	case "twosided":
		pts, err := o.two.Query(lo, lo)
		return len(pts), err
	case "threeside":
		pts, err := o.three.Query(lo, hi, lo)
		return len(pts), err
	case "stabbing":
		ivs, err := o.stab.Stab(0)
		return len(ivs), err
	case "segment":
		ivs, err := o.seg.Stab(0)
		return len(ivs), err
	case "interval":
		ivs, err := o.itv.Stab(0)
		return len(ivs), err
	case "lsm":
		// The probe shape follows the base kind: stab for interval bases,
		// the full-range 2-sided query for point bases.
		switch o.lsm.Base() {
		case "stabbing", "segment", "interval":
			ivs, _, err := o.lsm.Stab(0)
			return len(ivs), err
		default:
			pts, _, err := o.lsm.Query(lo, lo)
			return len(pts), err
		}
	case "shard":
		switch shardedQueryKind(o.sharded) {
		case "twosided":
			pts, err := o.sharded.Query(lo, lo)
			return len(pts), err
		case "threeside":
			pts, err := o.sharded.QueryThreeSided(lo, hi, lo)
			return len(pts), err
		case "window":
			pts, err := o.sharded.WindowQuery(lo, hi, lo, hi)
			return len(pts), err
		default:
			ivs, err := o.sharded.Stab(0)
			return len(ivs), err
		}
	default: // window; openAny rejects anything else
		pts, err := o.win.Query(lo, hi, lo, hi)
		return len(pts), err
	}
}

// workerLabel names a series' worker tag: batch worker index, or "serial"
// for ops recorded outside any batch.
func workerLabel(w int) string {
	if w == pathcache.SerialWorker {
		return "serial"
	}
	return strconv.Itoa(w)
}

// histLine renders one metric histogram on a single line: totals followed
// by every non-empty log₂ bucket as "[lo,hi]:count".
func histLine(h pathcache.Histogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%d min=%d max=%d", h.Count, h.Sum, h.Min, h.Max)
	for _, bk := range h.Buckets {
		if bk.Hi == math.MaxInt64 {
			fmt.Fprintf(&b, " [%d,+inf):%d", bk.Lo, bk.Count)
			continue
		}
		fmt.Fprintf(&b, " [%d,%d]:%d", bk.Lo, bk.Hi, bk.Count)
	}
	return b.String()
}

// runVerify scans an index file against its checksums and prints what it
// holds. Exit status distinguishes the three recovery outcomes: 0 for an
// intact committed index, and an error (status 1) naming either a build
// that never committed or the detected corruption.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "index file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("verify requires -in")
	}
	if fi, err := os.Stat(*in); err == nil && fi.IsDir() {
		return verifySharded(*in)
	}
	rep, err := pathcache.VerifyFile(*in)
	if err != nil {
		return err
	}
	fmt.Printf("kind: %s\n", rep.Kind)
	fmt.Printf("epoch: %d\n", rep.Epoch)
	fmt.Printf("page: %d bytes (%d usable)\n", rep.PageSize, rep.Usable)
	fmt.Printf("slots: %d (%d live, %d free)\n", rep.Slots, rep.Live, rep.Free)
	fmt.Println("checksums: ok")
	return nil
}

// verifySharded checks a sharded store directory: the manifest's checksums
// and committed map first, then every shard file the map names, one row
// per shard. The map is read directly (not via OpenSharded) so a store
// with one corrupt shard still reports the other shards' health.
func verifySharded(dir string) error {
	manifest := filepath.Join(dir, shard.MapFileName)
	rep, err := pathcache.VerifyFile(manifest)
	if err != nil {
		return err
	}
	be, err := engine.Open(manifest)
	if err != nil {
		return err
	}
	m, err := shard.Load(be)
	if cerr := be.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("kind: %s (%d shards of %s, epoch %d)\n", rep.Kind, m.NumShards(), engine.KindName(m.Kind), m.Epoch)
	fmt.Println("manifest checksums: ok")
	for i, f := range m.Files {
		srep, err := pathcache.VerifyFile(filepath.Join(dir, f))
		if err != nil {
			return fmt.Errorf("shard %d (%s): %w", i, f, err)
		}
		fmt.Printf("shard %d: %s kind=%s slots=%d (%d live, %d free) checksums: ok\n",
			i, f, srep.Kind, srep.Slots, srep.Live, srep.Free)
	}
	return nil
}

func parseInts(s string) ([]int64, error) {
	fields := strings.Fields(s)
	out := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// readPoints parses x,y,id CSV lines (id optional; defaults to line number).
func readPoints(path string) ([]pathcache.Point, error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	pts := make([]pathcache.Point, len(rows))
	for i, r := range rows {
		if len(r) < 2 {
			return nil, fmt.Errorf("%s line %d: need x,y[,id]", path, i+1)
		}
		pts[i] = pathcache.Point{X: r[0], Y: r[1], ID: uint64(i + 1)}
		if len(r) >= 3 {
			pts[i].ID = uint64(r[2])
		}
	}
	return pts, nil
}

// readIntervals parses lo,hi,id CSV lines (id optional).
func readIntervals(path string) ([]pathcache.Interval, error) {
	rows, err := readCSV(path)
	if err != nil {
		return nil, err
	}
	ivs := make([]pathcache.Interval, len(rows))
	for i, r := range rows {
		if len(r) < 2 {
			return nil, fmt.Errorf("%s line %d: need lo,hi[,id]", path, i+1)
		}
		ivs[i] = pathcache.Interval{Lo: r[0], Hi: r[1], ID: uint64(i + 1)}
		if len(r) >= 3 {
			ivs[i].ID = uint64(r[2])
		}
	}
	return ivs, nil
}

func readCSV(path string) ([][]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		row := make([]int64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s line %d: bad number %q", path, line, p)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
