package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pathcache"
)

// The binary smoke test: boot run() exactly as main would, drive it over
// real HTTP, hot-reload with SIGHUP, then drain with SIGTERM — in-flight
// behavior is covered by internal/server; this pins the wiring.

// syncBuffer lets the server goroutine write stdout while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func buildIndex(t *testing.T, path string, n int) {
	t.Helper()
	pts := make([]pathcache.Point, n)
	for i := range pts {
		pts[i] = pathcache.Point{X: int64(i), Y: int64(i), ID: uint64(i + 1)}
	}
	tmp := path + ".next"
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented,
		&pathcache.Options{PageSize: 512, Path: tmp})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatalf("rename: %v", err)
	}
}

var addrRE = regexp.MustCompile(`http://([0-9.:]+)`)

func TestServeSmokeAndSignals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "smoke.pc")
	buildIndex(t, path, 100)

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-index", path, "-addr", "127.0.0.1:0"}, &out)
	}()

	// The serving line announces the bound port.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	get := func(p string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	query := func(a, b int) (int, map[string]any) {
		t.Helper()
		body := strings.NewReader(fmt.Sprintf(`{"a": %d, "b": %d}`, a, b))
		resp, err := http.Post(base+"/v1/query", "application/json", body)
		if err != nil {
			t.Fatalf("POST /v1/query: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if status, raw := get("/healthz"); status != 200 {
		t.Fatalf("healthz = %d %q", status, raw)
	}
	if status, m := query(0, 0); status != 200 || m["count"].(float64) != 100 {
		t.Fatalf("query = %d %v, want 200/count 100", status, m)
	}

	// SIGHUP hot reload: swap a 250-point index under the same path.
	buildIndex(t, path, 250)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	reloaded := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if status, m := query(0, 0); status == 200 && m["count"].(float64) == 250 {
			reloaded = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !reloaded {
		t.Fatalf("SIGHUP did not install the rebuilt index")
	}

	// SIGTERM drains: run returns nil and reports the drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not return after SIGTERM; output: %q", out.String())
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "drained") {
		t.Fatalf("drain transcript missing from output: %q", s)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatalf("listener still accepting after drain")
	}
}

func TestServeFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run([]string{}, &out); err == nil {
		t.Fatalf("run without -index succeeded")
	}
	if err := run([]string{"-index", filepath.Join(t.TempDir(), "absent.pc")}, &out); err == nil {
		t.Fatalf("run on a missing index file succeeded")
	}
}
