// Command pcserve serves a path-caching index file over HTTP/JSON: point,
// stab and window queries (plus batched variants across the worker pool)
// on any registered kind, the LSM write path (insert/delete/flush/compact)
// on the dynamic kind, and the observability surface (/metrics, /varz,
// /healthz).
//
// Usage:
//
//	pcserve -index file.pc [-addr :8080] [flags]
//
// SIGTERM or SIGINT drains gracefully: new requests get 503/draining,
// in-flight requests finish, then the process exits. SIGHUP hot-reloads
// the index file without dropping a single reader (the old snapshot serves
// every request that started on it).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathcache"
	"pathcache/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pcserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pcserve", flag.ContinueOnError)
	var (
		indexPath   = fs.String("index", "", "index file to serve (required)")
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		quotaRate   = fs.Float64("quota-rate", 0, "per-client tokens/second (0 disables quotas)")
		quotaBurst  = fs.Float64("quota-burst", 0, "per-client token bucket depth")
		maxInflight = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = unlimited)")
		deadline    = fs.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline = fs.Duration("max-deadline", 60*time.Second, "hard cap on client-requested deadlines")
		workers     = fs.Int("batch-workers", 0, "batch worker pool width (0 = GOMAXPROCS)")
		maxBatch    = fs.Int("max-batch", 0, "max queries per batch request (0 = 8192)")
		drainWait   = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("-index is required")
	}

	handle, err := pathcache.OpenHandle(*indexPath)
	if err != nil {
		return err
	}
	defer handle.Close()

	srv := server.New(handle, server.Config{
		QuotaRate:       *quotaRate,
		QuotaBurst:      *quotaBurst,
		MaxInflight:     *maxInflight,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		BatchWorkers:    *workers,
		MaxBatch:        *maxBatch,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The test harness (and init systems) parse this line to learn the
	// bound port when -addr ends in :0.
	fmt.Fprintf(stdout, "pcserve: serving %s on http://%s\n", *indexPath, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	defer signal.Stop(sigc)

	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if err := handle.Reload(); err != nil {
					log.Printf("pcserve: reload: %v", err)
				} else {
					log.Printf("pcserve: reloaded %s (generation %d)", *indexPath, handle.Generation())
				}
				continue
			}
			fmt.Fprintf(stdout, "pcserve: %v received, draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
			err := srv.Drain(ctx)
			cancel()
			if err != nil {
				return err
			}
			<-errc
			fmt.Fprintln(stdout, "pcserve: drained")
			return nil
		}
	}
}
