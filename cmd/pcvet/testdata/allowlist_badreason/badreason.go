// Package allowlist_badreason is an allowlist-subcommand fixture: its one
// directive has no justification, which must fail the report.
package allowlist_badreason

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock()
	//pcvet:allow lockheldio
	g.n++
	g.mu.Unlock()
}
