package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildPcvet compiles the multichecker into a temp dir and returns its path.
func buildPcvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pcvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pcvet: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestMultichecker drives the built binary end to end: a violation fixture
// must fail with exit 2 and named findings, and the repository tree must be
// clean — the property CI enforces.
func TestMultichecker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pcvet binary")
	}
	bin := buildPcvet(t)
	root := repoRoot(t)

	t.Run("FixtureFails", func(t *testing.T) {
		fixture := filepath.Join("internal", "analysis", "lockheldio", "testdata", "src", "lockheldio_bad")
		cmd := exec.Command(bin, fixture)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("pcvet %s: want exit 2, got %v\nstderr:\n%s", fixture, err, stderr.String())
		}
		for _, frag := range []string{
			"[lockheldio]",
			"performs pager I/O while",
			"which performs pager I/O",
		} {
			if !strings.Contains(stderr.String(), frag) {
				t.Errorf("stderr missing %q:\n%s", frag, stderr.String())
			}
		}
	})

	// The durability analyzers ride the same binary: each bad fixture must
	// fail through the multichecker exactly as it does under analysistest.
	for _, tc := range []struct {
		analyzer string
		frag     string
	}{
		{"durabilityorder", "acknowledges a WAL append with no fsync barrier"},
		{"commitprotocol", "freed with no commit flip"},
		{"snapshotimmutable", "derived from a //pcvet:snapshot field"},
	} {
		t.Run("FixtureFails/"+tc.analyzer, func(t *testing.T) {
			fixture := filepath.Join("internal", "analysis", tc.analyzer, "testdata", "src", tc.analyzer+"_bad")
			cmd := exec.Command(bin, fixture)
			cmd.Dir = root
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("pcvet %s: want exit 2, got %v\nstderr:\n%s", fixture, err, stderr.String())
			}
			for _, frag := range []string{"[" + tc.analyzer + "]", tc.frag} {
				if !strings.Contains(stderr.String(), frag) {
					t.Errorf("stderr missing %q:\n%s", frag, stderr.String())
				}
			}
		})
	}

	t.Run("RepoTreeClean", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("pcvet ./... should be clean, got %v\nstderr:\n%s", err, stderr.String())
		}
	})

	t.Run("Vettool", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/record", "./internal/disk")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet -vettool: %v\n%s", err, out)
		}
	})
}
