// Command pcvet is the repository's custom vet tool: a multichecker over
// the analyzers in internal/analysis/... that enforce the invariants the
// paper's theorems rest on (see DESIGN.md, “Statically-enforced
// invariants”).
//
// It runs two ways:
//
//	go vet -vettool=$(which pcvet) ./...   # as a vet backend (CI)
//	pcvet ./...                            # standalone, from the repo root
//	pcvet <dir>                            # one package directory (fixtures)
//
// As a vet backend it speaks cmd/go's unitchecker protocol (-V=full, -flags,
// and a *.cfg unit file per package) and type-checks against the export
// data the go command hands it. Standalone it resolves and type-checks
// packages from source. Either way the same analyzers run with the same
// per-package scoping, so local runs match CI exactly.
package main

import (
	"fmt"
	"os"
	"strings"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/commitprotocol"
	"pathcache/internal/analysis/durabilityorder"
	"pathcache/internal/analysis/errwrapinjected"
	"pathcache/internal/analysis/fixedwidth"
	"pathcache/internal/analysis/lockheldio"
	"pathcache/internal/analysis/obsdiscipline"
	"pathcache/internal/analysis/pagerdiscipline"
	"pathcache/internal/analysis/snapshotimmutable"
)

// all lists every analyzer pcvet knows, in reporting order.
var all = []*analysis.Analyzer{
	pagerdiscipline.Analyzer,
	lockheldio.Analyzer,
	fixedwidth.Analyzer,
	obsdiscipline.Analyzer,
	errwrapinjected.Analyzer,
	durabilityorder.Analyzer,
	commitprotocol.Analyzer,
	snapshotimmutable.Analyzer,
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// cmd/go's tool-ID handshake. The exact shape matters: the go
		// command parses "<name> version <stamp>".
		fmt.Printf("pcvet version devel buildID=pcvet-%d-analyzers\n", len(all))
	case len(args) == 1 && args[0] == "-flags":
		// cmd/go queries the tool's flag set to split the vet command line.
		// pcvet takes no analyzer flags.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runUnit(args[0])
	case len(args) > 0 && args[0] == "allowlist":
		runAllowlist(args[1:])
	case len(args) > 0 && args[0] == "-h" || len(args) == 0:
		fmt.Fprintln(os.Stderr, "usage: pcvet ./...          (standalone, from the repo root)")
		fmt.Fprintln(os.Stderr, "       pcvet <dir> [...]    (explicit package directories)")
		fmt.Fprintln(os.Stderr, "       pcvet allowlist ./... (report every //pcvet:allow suppression)")
		fmt.Fprintln(os.Stderr, "       go vet -vettool=$(which pcvet) ./...")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	default:
		runStandalone(args)
	}
}

// exit codes follow vet convention: 0 clean, 1 internal failure, 2 findings.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pcvet: "+format+"\n", args...)
	os.Exit(1)
}
