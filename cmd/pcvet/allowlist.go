package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/load"
)

// runAllowlist enumerates every //pcvet:allow directive in the matched
// packages: one "file:line: analyzer -- reason" line per suppressed
// analyzer, sorted, on stdout. The report is the flip side of a clean vet
// run — every place the code was argued past a checker, with the argument.
// A directive missing its justification is reported on stderr and fails the
// run with exit 2, so an unexplained suppression cannot ride in quietly.
func runAllowlist(args []string) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, modulePath := moduleRoot()
	targets, err := load.Targets(root, modulePath, args)
	if err != nil {
		fatalf("%v", err)
	}
	if len(targets) == 0 {
		fatalf("no packages match %v", args)
	}

	type entry struct {
		file   string
		line   int
		name   string
		reason string
	}
	var entries []entry
	bad := 0
	fset := token.NewFileSet()
	for _, tgt := range targets {
		dirents, err := os.ReadDir(tgt.Dir)
		if err != nil {
			fatalf("%v", err)
		}
		for _, de := range dirents {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
				continue
			}
			name := filepath.Join(tgt.Dir, de.Name())
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				fatalf("%v", err)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, analysis.DirectivePrefix) {
						continue
					}
					pos := fset.Position(c.Pos())
					rel, rerr := filepath.Rel(root, pos.Filename)
					if rerr != nil {
						rel = pos.Filename
					}
					rel = filepath.ToSlash(rel)
					names, reason, found := strings.Cut(strings.TrimPrefix(c.Text, analysis.DirectivePrefix), "--")
					reason = strings.TrimSpace(reason)
					if !found || reason == "" {
						fmt.Fprintf(os.Stderr, "%s:%d: suppression without justification: write %s <analyzer> -- <reason>\n",
							rel, pos.Line, analysis.DirectivePrefix)
						bad++
						continue
					}
					for _, n := range strings.Split(names, ",") {
						if n = strings.TrimSpace(n); n != "" {
							entries = append(entries, entry{rel, pos.Line, n, reason})
						}
					}
				}
			}
		}
	}

	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.name < b.name
	})
	for _, e := range entries {
		fmt.Printf("%s:%d: %s -- %s\n", e.file, e.line, e.name, e.reason)
	}
	if bad > 0 {
		os.Exit(2)
	}
}
