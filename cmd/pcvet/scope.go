package main

import (
	"path"
	"strings"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/commitprotocol"
	"pathcache/internal/analysis/durabilityorder"
	"pathcache/internal/analysis/errwrapinjected"
	"pathcache/internal/analysis/fixedwidth"
	"pathcache/internal/analysis/lockheldio"
	"pathcache/internal/analysis/obsdiscipline"
	"pathcache/internal/analysis/pagerdiscipline"
	"pathcache/internal/analysis/snapshotimmutable"
)

// Scoping: which analyzers run on which packages. The conventions are
// layer-specific — pagerdiscipline polices the index structures above the
// disk layer (the disk package itself is the accounting implementation),
// lockheldio polices the lock-striped pool and the batch fan-out, fixedwidth
// polices record encoders, and errwrapinjected applies everywhere
// production code runs.

// indexPackages are the structure packages that must do all page I/O
// through their Pager. internal/engine rides along: it assembles the pager
// stack and hands out op-counted views, so the same discipline applies
// (its sanctioned FileStore meta I/O is exempted inside the analyzer).
var indexPackages = []string{
	"internal/engine",
	"internal/extpst",
	"internal/ext3side",
	"internal/extseg",
	"internal/extint",
	"internal/extwindow",
	"internal/btree",
	"internal/skeletal",
	"internal/logmethod",
	"internal/lsm",
	"internal/dynpst",
	"internal/dyn3side",
	"internal/pstcore",
	"internal/inmem",
	"internal/shard",
}

// encoderPackages hold fixed-width record layouts or node-payload encoders.
var encoderPackages = append([]string{"internal/record", "internal/disk"}, indexPackages...)

// lockPackages hold the sharded pool, the parallel batch engine, and the
// serving layer (whose snapshot handles and admission gates must never hold
// a lock across store I/O). The bare module path is the root pathcache
// package (batch.go, handle.go).
var lockPackages = []string{"internal/disk", "internal/server", "internal/shard", "pathcache"}

// obsExempt are the sanctioned metric-recording seams; obsdiscipline runs
// on every other package (the analyzer also self-gates, so the fixture
// packages still exercise it).
var obsExempt = []string{"internal/obs", "internal/engine", "pathcache"}

// durabilityPackages hold the WAL: durabilityorder polices the
// append -> fsync -> ack ordering where acknowledged writes live.
var durabilityPackages = []string{"internal/lsm"}

// commitPackages flip metadata heads: the write-all-new -> flip -> free-old
// discipline applies wherever a commit point is published.
var commitPackages = []string{"internal/lsm", "internal/disk", "internal/engine", "internal/shard"}

// snapshotPackages declare //pcvet:snapshot fields (the marker is
// package-local, so the analyzer only has teeth where the fields live).
var snapshotPackages = []string{"internal/lsm", "internal/shard"}

// analyzersFor selects the analyzers for importPath. Fixture packages run
// the analyzer their name starts with, or every analyzer when none matches,
// so the multichecker can be pointed at any fixture directly.
func analyzersFor(importPath string) []*analysis.Analyzer {
	if name, ok := fixtureName(importPath); ok {
		var matched []*analysis.Analyzer
		for _, a := range all {
			if strings.HasPrefix(name, a.Name) {
				matched = append(matched, a)
			}
		}
		if len(matched) > 0 {
			return matched
		}
		return all
	}

	var out []*analysis.Analyzer
	if matchesAny(importPath, indexPackages) {
		out = append(out, pagerdiscipline.Analyzer)
	}
	if matchesAny(importPath, lockPackages) {
		out = append(out, lockheldio.Analyzer)
	}
	if matchesAny(importPath, encoderPackages) {
		out = append(out, fixedwidth.Analyzer)
	}
	if !matchesAny(importPath, obsExempt) {
		out = append(out, obsdiscipline.Analyzer)
	}
	out = append(out, errwrapinjected.Analyzer)
	if matchesAny(importPath, durabilityPackages) {
		out = append(out, durabilityorder.Analyzer)
	}
	if matchesAny(importPath, commitPackages) {
		out = append(out, commitprotocol.Analyzer)
	}
	if matchesAny(importPath, snapshotPackages) {
		out = append(out, snapshotimmutable.Analyzer)
	}
	return out
}

// fixtureName recognizes analyzer test fixtures: packages under a testdata
// tree, or bare single-segment paths (a fixture directory loaded from
// outside the module).
func fixtureName(importPath string) (string, bool) {
	if strings.Contains(importPath, "testdata/") {
		return path.Base(importPath), true
	}
	if !strings.Contains(importPath, "/") && importPath != "pathcache" {
		return importPath, true
	}
	return "", false
}

func matchesAny(importPath string, pkgs []string) bool {
	for _, p := range pkgs {
		if importPath == p || strings.HasSuffix(importPath, "/"+p) || p == "pathcache" && importPath == "pathcache" {
			return true
		}
	}
	return false
}
