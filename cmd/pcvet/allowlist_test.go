package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/allowlist.golden from the current tree")

// TestAllowlist pins the suppression report: every //pcvet:allow in the
// production tree, with file:line, analyzer and justification. A new or
// moved directive shows up as a golden diff — the reviewable artifact the
// CI step publishes. Regenerate with: go test ./cmd/pcvet -run Allowlist -update
func TestAllowlist(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pcvet binary")
	}
	bin := buildPcvet(t)
	root := repoRoot(t)

	t.Run("Golden", func(t *testing.T) {
		cmd := exec.Command(bin, "allowlist", "./...")
		cmd.Dir = root
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("pcvet allowlist ./...: %v\nstderr:\n%s", err, stderr.String())
		}
		golden := filepath.Join("testdata", "allowlist.golden")
		if *update {
			if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading golden (run with -update to create): %v", err)
		}
		if got := stdout.String(); got != string(want) {
			t.Errorf("suppression report drifted from testdata/allowlist.golden (re-run with -update if intended)\n got:\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("MissingReasonFails", func(t *testing.T) {
		fixture := filepath.Join("cmd", "pcvet", "testdata", "allowlist_badreason")
		cmd := exec.Command(bin, "allowlist", fixture)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("allowlist on a reasonless directive: want exit 2, got %v\nstderr:\n%s", err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "suppression without justification") {
			t.Errorf("stderr missing the missing-reason diagnostic:\n%s", stderr.String())
		}
	})
}
