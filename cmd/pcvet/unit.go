package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON unit file cmd/go writes for each package when
// pcvet runs as `go vet -vettool=pcvet`. Field set and semantics follow
// cmd/go/internal/work's vetConfig; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit. The go command type-checked the package's
// dependencies already and points us at their export data; pcvet re-checks
// only the unit's own files against it, so a full-tree `go vet -vettool`
// run stays fast.
func runUnit(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}

	// pcvet produces no cross-package facts, but the driver expects the
	// vetx output file to exist before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing vetx: %v", err)
		}
	}
	if cfg.VetxOnly {
		return // dependency visit: facts only, no diagnostics wanted
	}

	analyzers := analyzersFor(cfg.ImportPath)
	if len(analyzers) == 0 {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})

	info := newInfo()
	tconf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	n := reportDiagnostics(fset, files, pkg, info, analyzers)
	if n > 0 {
		os.Exit(2)
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
