package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/load"
)

// runStandalone resolves package patterns from source and analyzes each.
// Run it from the repository root so module-local imports resolve.
func runStandalone(args []string) {
	root, modulePath := moduleRoot()
	targets, err := load.Targets(root, modulePath, args)
	if err != nil {
		fatalf("%v", err)
	}
	if len(targets) == 0 {
		fatalf("no packages match %v", args)
	}

	total := 0
	for _, tgt := range targets {
		analyzers := analyzersFor(tgt.ImportPath)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := load.Dir(tgt.Dir, tgt.ImportPath)
		if err != nil {
			fatalf("%v", err)
		}
		total += reportDiagnostics(pkg.Fset, pkg.Syntax, pkg.Pkg, pkg.Info, analyzers)
	}
	if total > 0 {
		os.Exit(2)
	}
}

// moduleRoot finds the enclosing go.mod and the module path it declares.
func moduleRoot() (root, modulePath string) {
	dir, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleRx.FindSubmatch(data)
			if m == nil {
				fatalf("%s/go.mod: no module directive", d)
			}
			return d, string(m[1])
		}
		if filepath.Dir(d) == d {
			fatalf("no go.mod found above %s (run pcvet from the repository)", dir)
		}
	}
}

var moduleRx = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// newInfo allocates the types.Info both modes share.
func newInfo() *types.Info { return analysis.NewInfo() }

// reportDiagnostics runs the analyzers and prints findings in the standard
// file:line:col format, returning the number reported.
func reportDiagnostics(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) int {
	diags, err := analysis.Run(&analysis.Package{Fset: fset, Syntax: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags)
}
