// Command pcbench regenerates the experiment tables of EXPERIMENTS.md: for
// every theorem of the paper (and the conceptual figures), it measures page
// transfers and storage on the simulated disk and prints them beside the
// predicted terms.
//
// Usage:
//
//	pcbench [-exp e1|e2|...|p1|all] [-page 4096] [-seed 1] [-small] [-list] [-parallel N] [-json DIR]
//
// -parallel N sets the top of the worker ladder for the parallel
// batch-query experiment (p1), which reports queries/sec and speedup vs
// serial through the sharded buffer pool.
//
// -json DIR runs a compact measurement suite instead of the tables and
// writes one BENCH_<kind>.json per registered index kind into DIR:
// measured I/O counts per query beside the paper's predicted bound and
// their ratio, plus the log₂-bucketed per-query reads histogram and the
// worst single-query bound ratio, for dashboards and regression tracking.
// The suite commits atomically — reports are staged as .tmp files and
// renamed only once every family succeeded, so a failed run never leaves
// DIR with a mix of fresh and stale reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	// Imported for its init side effect: registering the six persisted index
	// kinds with the engine registry, which checkJSONNames validates against.
	_ "pathcache"

	"pathcache/internal/bench"
	"pathcache/internal/engine"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (e1..e10, f2, f4, p1, a1..a3, all)")
	page := flag.Int("page", 4096, "simulated disk page size in bytes")
	seed := flag.Int64("seed", 1, "workload seed")
	small := flag.Bool("small", false, "reduced sizes (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", 8, "max workers for the parallel batch experiment (p1)")
	jsonDir := flag.String("json", "", "write machine-readable BENCH_*.json reports into this directory and exit")
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("%-4s %s\n", r.Name, r.Desc)
		}
		return
	}

	cfg := bench.Config{PageSize: *page, Seed: *seed, Small: *small, Workers: *parallel}
	if *jsonDir != "" {
		paths, err := bench.WriteJSON(*jsonDir, cfg)
		if err == nil {
			err = checkJSONNames(paths)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		return
	}
	if *exp == "all" {
		if err := bench.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range bench.Runners() {
		if r.Name == *exp {
			if err := r.Run(os.Stdout, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "pcbench: unknown experiment %q (use -list)\n", *exp)
	os.Exit(1)
}

// checkJSONNames pins the BENCH_<family>.json namespace to the engine's
// kind registry: every report family must be a registered index kind name,
// so dashboards key benchmark files on the same names pcindex info/verify
// print. Renaming a kind without renaming its bench family fails here.
func checkJSONNames(paths []string) error {
	registered := make(map[string]bool)
	for _, d := range engine.Kinds() {
		registered[d.Name] = true
	}
	for _, p := range paths {
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		if !registered[name] {
			return fmt.Errorf("report family %q is not a registered index kind", name)
		}
	}
	return nil
}
