package pathcache

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"pathcache/internal/workload"
)

// Merge-determinism property: a sharded batch must return byte-identical
// results to a single store over the same records — same points, same
// order within every answer — for every worker count and every seed. The
// scatter-gather merge (shard-order concatenation + canonical sort) is
// deterministic by construction; this battery pins that construction.
//
// Reproduce one failure with:
//
//	PC_SHARDDET_SEED=<seed> go test -run TestShardedMergeDeterminism

// shardDetSeeds returns the workload seeds: the fixed list, or the single
// seed the PC_SHARDDET_SEED environment variable requests.
func shardDetSeeds(t *testing.T) []int64 {
	if s := os.Getenv("PC_SHARDDET_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PC_SHARDDET_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{3, 11, 29}
}

func shardDetRepro(what string, seed int64, workers int, qi int, detail string) string {
	return fmt.Sprintf(
		"sharded %s diverges from the single-store oracle at seed=%d workers=%d query=%d: %s\n"+
			"reproduce: PC_SHARDDET_SEED=%d go test -run TestShardedMergeDeterminism",
		what, seed, workers, qi, detail, seed)
}

func TestShardedMergeDeterminism(t *testing.T) {
	for _, seed := range shardDetSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pts := fromRecPoints(workload.ZipfPoints(700, 4000, 1.2, seed))
			nshards := 2 + rng.Intn(5)
			dir := t.TempDir()
			s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: nshards, Scheme: SchemeSegmented}, shardedBuildOpts())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			defer s.Close()
			oracle, err := NewTwoSidedIndex(pts, SchemeSegmented, nil)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			defer oracle.Close()

			var qs []TwoSidedQuery
			for i := 0; i < 40; i++ {
				qs = append(qs, TwoSidedQuery{A: rng.Int63n(4400) - 200, B: rng.Int63n(4400) - 200})
			}
			// The oracle answer set, canonicalized once: every (workers, run)
			// combination must reproduce it byte for byte.
			want := make([][]Point, len(qs))
			for i, q := range qs {
				w, err := oracle.Query(q.A, q.B)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				sortPoints(w)
				want[i] = w
			}
			for _, workers := range []int{1, 2, 3, 8} {
				for run := 0; run < 3; run++ {
					got, st, err := s.QueryBatch(qs, workers)
					if err != nil {
						t.Fatalf("QueryBatch(workers=%d): %v", workers, err)
					}
					if st.Queries != len(qs) {
						t.Fatalf("batch Queries = %d, want %d", st.Queries, len(qs))
					}
					for qi := range qs {
						if len(got[qi]) != len(want[qi]) {
							t.Fatal(shardDetRepro("QueryBatch", seed, workers, qi,
								fmt.Sprintf("%d results, want %d", len(got[qi]), len(want[qi]))))
						}
						for j := range want[qi] {
							if got[qi][j] != want[qi][j] {
								t.Fatal(shardDetRepro("QueryBatch", seed, workers, qi,
									fmt.Sprintf("result %d is %+v, want %+v", j, got[qi][j], want[qi][j])))
							}
						}
					}
				}
			}
		})
	}
}

func TestShardedSearchBatchDeterminism(t *testing.T) {
	for _, seed := range shardDetSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var splits []int64
			for k := int64(500); k < 4000; k += 400 + rng.Int63n(400) {
				splits = append(splits, k)
			}
			s, err := NewShardedRange(splits, nil)
			if err != nil {
				t.Fatalf("NewShardedRange: %v", err)
			}
			defer s.Close()
			oracle, err := NewRangeIndex(nil)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			defer oracle.Close()
			for i := 0; i < 600; i++ {
				k, v := rng.Int63n(4000), uint64(i+1)
				if err := s.Insert(k, v); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				if err := oracle.Insert(k, v); err != nil {
					t.Fatalf("oracle Insert: %v", err)
				}
			}
			var keys []int64
			for i := 0; i < 64; i++ {
				keys = append(keys, rng.Int63n(4400)-200)
			}
			want := make([][]uint64, len(keys))
			for i, k := range keys {
				w, err := oracle.Search(k)
				if err != nil {
					t.Fatalf("oracle Search: %v", err)
				}
				want[i] = w
			}
			for _, workers := range []int{1, 2, 3, 8} {
				for run := 0; run < 3; run++ {
					got, _, err := s.SearchBatch(keys, workers)
					if err != nil {
						t.Fatalf("SearchBatch(workers=%d): %v", workers, err)
					}
					for qi := range keys {
						if len(got[qi]) != len(want[qi]) {
							t.Fatal(shardDetRepro("SearchBatch", seed, workers, qi,
								fmt.Sprintf("%d values, want %d", len(got[qi]), len(want[qi]))))
						}
						for j := range want[qi] {
							if got[qi][j] != want[qi][j] {
								t.Fatal(shardDetRepro("SearchBatch", seed, workers, qi,
									fmt.Sprintf("value %d is %d, want %d", j, got[qi][j], want[qi][j])))
							}
						}
					}
				}
			}
		})
	}
}
