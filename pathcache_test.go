package pathcache

import (
	"math/rand"
	"sort"
	"testing"

	"pathcache/internal/workload"
)

func uniformPoints(n int, max int64, seed int64) []Point {
	rec := workload.UniformPoints(n, max, seed)
	pts := make([]Point, len(rec))
	for i, p := range rec {
		pts[i] = Point(p)
	}
	return pts
}

func uniformIntervals(n int, max, maxLen int64, seed int64) []Interval {
	rec := workload.UniformIntervals(n, max, maxLen, seed)
	ivs := make([]Interval, len(rec))
	for i, iv := range rec {
		ivs[i] = Interval(iv)
	}
	return ivs
}

func bruteTwoSided(pts []Point, a, b int64) []Point {
	var out []Point
	for _, p := range pts {
		if p.X >= a && p.Y >= b {
			out = append(out, p)
		}
	}
	return out
}

func bruteStab(ivs []Interval, q int64) []Interval {
	var out []Interval
	for _, iv := range ivs {
		if iv.Lo <= q && q <= iv.Hi {
			out = append(out, iv)
		}
	}
	return out
}

func samePointSets(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	less := func(s []Point) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].X != s[j].X {
				return s[i].X < s[j].X
			}
			if s[i].Y != s[j].Y {
				return s[i].Y < s[j].Y
			}
			return s[i].ID < s[j].ID
		}
	}
	as := append([]Point(nil), a...)
	bs := append([]Point(nil), b...)
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sameIntervalSets(a, b []Interval) bool {
	pa := make([]Point, len(a))
	pb := make([]Point, len(b))
	for i, iv := range a {
		pa[i] = Point{X: iv.Lo, Y: iv.Hi, ID: iv.ID}
	}
	for i, iv := range b {
		pb[i] = Point{X: iv.Lo, Y: iv.Hi, ID: iv.ID}
	}
	return samePointSets(pa, pb)
}

var allSchemes = []Scheme{SchemeIKO, SchemeBasic, SchemeSegmented, SchemeTwoLevel, SchemeMultilevel}

func TestTwoSidedIndexAllSchemes(t *testing.T) {
	pts := uniformPoints(8000, 100_000, 301)
	for _, sc := range allSchemes {
		ix, err := NewTwoSidedIndex(pts, sc, &Options{PageSize: 512})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if ix.Len() != len(pts) {
			t.Fatalf("%v: Len=%d", sc, ix.Len())
		}
		if ix.Pages() <= 0 {
			t.Fatalf("%v: Pages=%d", sc, ix.Pages())
		}
		for _, q := range workload.TwoSidedQueries(20, 100_000, 0.01, 303) {
			got, prof, err := ix.QueryProfile(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTwoSided(pts, q.A, q.B)
			if !samePointSets(got, want) {
				t.Fatalf("%v query (%d,%d): got %d want %d", sc, q.A, q.B, len(got), len(want))
			}
			if prof.Results != len(got) {
				t.Fatalf("%v: profile results %d != %d", sc, prof.Results, len(got))
			}
		}
	}
}

func TestTwoSidedRejectsUnknownScheme(t *testing.T) {
	if _, err := NewTwoSidedIndex(nil, Scheme(99), nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		SchemeIKO:        "iko",
		SchemeBasic:      "basic",
		SchemeSegmented:  "segmented",
		SchemeTwoLevel:   "two-level",
		SchemeMultilevel: "multilevel",
	}
	for sc, s := range want {
		if sc.String() != s {
			t.Errorf("%d.String() = %q, want %q", sc, sc.String(), s)
		}
	}
}

func TestThreeSidedIndex(t *testing.T) {
	pts := uniformPoints(8000, 100_000, 305)
	ix, err := NewThreeSidedIndex(pts, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.ThreeSidedQueries(20, 100_000, 0.2, 0.02, 307) {
		got, err := ix.Query(q.A1, q.A2, q.B)
		if err != nil {
			t.Fatal(err)
		}
		var want []Point
		for _, p := range pts {
			if p.X >= q.A1 && p.X <= q.A2 && p.Y >= q.B {
				want = append(want, p)
			}
		}
		if !samePointSets(got, want) {
			t.Fatalf("query (%d,%d,%d): got %d want %d", q.A1, q.A2, q.B, len(got), len(want))
		}
	}
}

func TestDynamicIndex(t *testing.T) {
	ix, err := NewDynamicIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	pts := uniformPoints(3000, 50_000, 309)
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts[:1000] {
		if err := ix.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	live := pts[1000:]
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
	for _, q := range workload.TwoSidedQueries(20, 50_000, 0.05, 311) {
		got, err := ix.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteTwoSided(live, q.A, q.B); !samePointSets(got, want) {
			t.Fatalf("query (%d,%d): got %d want %d", q.A, q.B, len(got), len(want))
		}
	}
}

func TestStabbingIndexStatic(t *testing.T) {
	ivs := uniformIntervals(5000, 100_000, 10_000, 313)
	for _, sc := range []Scheme{SchemeSegmented, SchemeTwoLevel} {
		ix, err := NewStabbingIndex(ivs, sc, &Options{PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload.StabQueries(40, 110_000, 315) {
			got, err := ix.Stab(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteStab(ivs, q); !sameIntervalSets(got, want) {
				t.Fatalf("%v stab %d: got %d want %d", sc, q, len(got), len(want))
			}
		}
	}
	if _, err := NewStabbingIndex([]Interval{{Lo: 5, Hi: 1}}, SchemeSegmented, nil); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestDynamicStabbingIndex(t *testing.T) {
	ix, err := NewDynamicStabbingIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	ivs := uniformIntervals(2000, 50_000, 5_000, 317)
	for _, iv := range ivs {
		if err := ix.Insert(iv); err != nil {
			t.Fatal(err)
		}
	}
	for _, iv := range ivs[:700] {
		if err := ix.Delete(iv); err != nil {
			t.Fatal(err)
		}
	}
	live := ivs[700:]
	for _, q := range workload.StabQueries(30, 60_000, 319) {
		got, err := ix.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteStab(live, q); !sameIntervalSets(got, want) {
			t.Fatalf("stab %d: got %d want %d", q, len(got), len(want))
		}
	}
	if err := ix.Insert(Interval{Lo: 9, Hi: 3}); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestSegmentAndIntervalIndexes(t *testing.T) {
	ivs := uniformIntervals(4000, 100_000, 20_000, 321)
	for _, cached := range []bool{false, true} {
		seg, err := NewSegmentIndex(ivs, cached, &Options{PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		itv, err := NewIntervalIndex(ivs, cached, &Options{PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload.StabQueries(40, 120_000, 323) {
			want := bruteStab(ivs, q)
			got, prof, err := seg.StabProfile(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIntervalSets(got, want) {
				t.Fatalf("segment cached=%v stab %d: got %d want %d", cached, q, len(got), len(want))
			}
			if prof.Results != len(got) {
				t.Fatal("segment profile mismatch")
			}
			got, _, err = itv.StabProfile(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIntervalSets(got, want) {
				t.Fatalf("interval cached=%v stab %d: got %d want %d", cached, q, len(got), len(want))
			}
		}
		// Theorem 3.5 vs 3.4: the interval tree must use less space than the
		// segment tree (log B vs log n factor).
		if cached && itv.Pages() >= seg.Pages() {
			t.Fatalf("interval tree (%d pages) not smaller than segment tree (%d pages)",
				itv.Pages(), seg.Pages())
		}
	}
}

func TestRangeIndex(t *testing.T) {
	ix, err := NewRangeIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(325))
	n := 5000
	for i := 0; i < n; i++ {
		if err := ix.Insert(rng.Int63n(10_000), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d", ix.Len())
	}
	count := 0
	if err := ix.Range(2000, 4000, func(k int64, v uint64) bool {
		if k < 2000 || k > 4000 {
			t.Fatalf("range returned key %d", k)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("range returned nothing")
	}
	if err := ix.Delete(99_999, 1); err == nil {
		t.Fatal("deleting absent pair succeeded")
	}
}

// F1 (Figure 1): the query-class containment chain. A diagonal-corner query
// is a special 2-sided query; a 2-sided query is a 3-sided query with an
// unbounded side; stabbing reduces to diagonal-corner. All four give
// identical answers on the same data.
func TestF1QueryClassReductions(t *testing.T) {
	ivs := uniformIntervals(3000, 50_000, 8_000, 327)
	pts := make([]Point, len(ivs))
	for i, iv := range ivs {
		pts[i] = Point{X: -iv.Lo, Y: iv.Hi, ID: iv.ID} // diagonal-corner reduction
	}
	two, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewThreeSidedIndex(pts, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	stab, err := NewStabbingIndex(ivs, SchemeSegmented, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSegmentIndex(ivs, true, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.StabQueries(30, 60_000, 329) {
		// Stabbing via four routes.
		fromStab, err := stab.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		fromSeg, err := seg.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		fromTwo, err := two.Query(-q, q) // diagonal-corner query
		if err != nil {
			t.Fatal(err)
		}
		fromThree, err := three.Query(-q, int64(1)<<62, q) // 3-sided with open right
		if err != nil {
			t.Fatal(err)
		}
		want := bruteStab(ivs, q)
		if !sameIntervalSets(fromStab, want) {
			t.Fatalf("stabbing index wrong at %d", q)
		}
		if !sameIntervalSets(fromSeg, want) {
			t.Fatalf("segment index wrong at %d", q)
		}
		if len(fromTwo) != len(want) || len(fromThree) != len(want) {
			t.Fatalf("reduction mismatch at %d: stab=%d 2-sided=%d 3-sided=%d",
				q, len(want), len(fromTwo), len(fromThree))
		}
	}
}

// F2 (Figure 2): with a buffer pool the same queries cost fewer store I/Os
// (warm pages), demonstrating the pager split.
func TestBufferPoolReducesStoreReads(t *testing.T) {
	pts := uniformPoints(20_000, 100_000, 331)
	cold, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512, BufferPoolPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.TwoSidedQueries(50, 100_000, 0.01, 333)
	cold.ResetStats()
	warm.ResetStats()
	for _, q := range queries {
		if _, err := cold.Query(q.A, q.B); err != nil {
			t.Fatal(err)
		}
		if _, err := warm.Query(q.A, q.B); err != nil {
			t.Fatal(err)
		}
	}
	if warm.Stats().Reads >= cold.Stats().Reads {
		t.Fatalf("buffer pool did not reduce store reads: warm=%d cold=%d",
			warm.Stats().Reads, cold.Stats().Reads)
	}
}

func TestStatsAndB(t *testing.T) {
	if b := B(4096); b != (4096-10)/24 {
		t.Fatalf("B(4096) = %d", b)
	}
	pts := uniformPoints(100, 1000, 335)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Pages == 0 {
		t.Fatal("no pages reported")
	}
	ix.ResetStats()
	if s := ix.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if _, err := ix.Query(0, 0); err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Reads == 0 {
		t.Fatal("query cost no reads")
	}
}

func TestDynamicThreeSidedIndex(t *testing.T) {
	ix, err := NewDynamicThreeSidedIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	pts := uniformPoints(4000, 50_000, 341)
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts[:1500] {
		if err := ix.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	live := pts[1500:]
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
	for _, q := range workload.ThreeSidedQueries(20, 50_000, 0.3, 0.02, 343) {
		got, err := ix.Query(q.A1, q.A2, q.B)
		if err != nil {
			t.Fatal(err)
		}
		var want []Point
		for _, p := range live {
			if p.X >= q.A1 && p.X <= q.A2 && p.Y >= q.B {
				want = append(want, p)
			}
		}
		if !samePointSets(got, want) {
			t.Fatalf("query (%d,%d,%d): got %d want %d", q.A1, q.A2, q.B, len(got), len(want))
		}
	}
	if ix.Pages() <= 0 || ix.Stats().Reads < 0 {
		t.Fatal("stats broken")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowIndex(t *testing.T) {
	pts := uniformPoints(8000, 100_000, 351)
	ix, err := NewWindowIndex(pts, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(pts) || ix.Pages() <= 0 {
		t.Fatalf("Len=%d Pages=%d", ix.Len(), ix.Pages())
	}
	rng := rand.New(rand.NewSource(353))
	for i := 0; i < 30; i++ {
		x1 := rng.Int63n(100_000)
		x2 := x1 + rng.Int63n(100_000-x1+1)
		y1 := rng.Int63n(100_000)
		y2 := y1 + rng.Int63n(100_000-y1+1)
		got, prof, err := ix.QueryProfile(x1, x2, y1, y2)
		if err != nil {
			t.Fatal(err)
		}
		var want []Point
		for _, p := range pts {
			if p.X >= x1 && p.X <= x2 && p.Y >= y1 && p.Y <= y2 {
				want = append(want, p)
			}
		}
		if !samePointSets(got, want) {
			t.Fatalf("window (%d,%d)x(%d,%d): got %d want %d", x1, x2, y1, y2, len(got), len(want))
		}
		if prof.Results != len(got) {
			t.Fatal("profile mismatch")
		}
	}
}

func TestDynamicBulkLoad(t *testing.T) {
	pts := uniformPoints(5000, 50_000, 361)
	two, err := NewDynamicIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := two.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	if two.Len() != len(pts) {
		t.Fatalf("Len = %d", two.Len())
	}
	three, err := NewDynamicThreeSidedIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := three.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	if three.Len() != len(pts) {
		t.Fatalf("3-sided Len = %d", three.Len())
	}
	for _, q := range workload.TwoSidedQueries(15, 50_000, 0.03, 363) {
		got, err := two.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteTwoSided(pts, q.A, q.B); !samePointSets(got, want) {
			t.Fatalf("bulk 2-sided query (%d,%d): got %d want %d", q.A, q.B, len(got), len(want))
		}
		got3, err := three.Query(q.A, 1<<40, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if !samePointSets(got3, bruteTwoSided(pts, q.A, q.B)) {
			t.Fatalf("bulk 3-sided query mismatch at (%d,%d)", q.A, q.B)
		}
	}
}
