package pathcache

import (
	"errors"
	"fmt"
	"time"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
	"pathcache/internal/obs"
)

// This file is the public face of the observability layer (internal/obs):
// the Metrics snapshot every index exposes, the Tracer hook Options carry,
// and the bound-sentinel error surface. Each index operation — a serial
// query or stab, one batch worker's query, a build — is recorded against
// the engine backend's registry with its exact op-scoped I/O counts, and
// each query-class operation is checked against its kind's theorem bound.

// SerialWorker is the Worker value of operations recorded outside any
// batch: serial queries, stabs and builds.
const SerialWorker = obs.SerialWorker

// NoShard is the OpMetrics.Shard value of series recorded outside any
// sharded store; inside one, Shard is the 0-based shard number.
const NoShard = obs.NoShard

// ErrBoundExceeded reports an operation whose measured I/O breached its
// kind's declared theorem bound with strict bounds armed
// (Options.StrictBounds). Errors wrapping it are *BoundError values
// carrying the offending operation's full trace; test with
// errors.Is(err, ErrBoundExceeded) and unpack with errors.As.
var ErrBoundExceeded = obs.ErrBoundExceeded

// TraceOp identifies one in-flight index operation.
type TraceOp struct {
	// Kind is the index's registry name ("twosided", "segment", ...).
	Kind string
	// Name is the operation ("query", "stab", "search", "build").
	Name string
	// Worker is the batch worker that ran the op, or SerialWorker.
	Worker int
	// Seq is the operation's store-unique sequence number.
	Seq uint64
	// Start is when the operation began.
	Start time.Time
}

// TraceEvent is the completed-operation record: the op plus its exact
// measured I/O, output size, duration, and declared theorem bound.
type TraceEvent struct {
	TraceOp
	Reads     int64 // store pages read by this op
	Writes    int64 // store pages written by this op
	CacheHits int64 // buffer-pool hits (free accesses) by this op
	Results   int
	Duration  time.Duration
	// Bound is the kind's theorem I/O bound in page reads for this op's
	// (n, B, t); zero when the op declares none (builds). Ratio is
	// Reads/Bound.
	Bound float64
	Ratio float64
}

// Tracer observes operation lifecycles. Install one with
// Options.WithTracer; implementations must be safe for concurrent use
// because batch workers emit events in parallel.
type Tracer interface {
	OpStart(TraceOp)
	OpEnd(TraceEvent)
}

// tracerAdapter converts the internal registry's events to the public
// trace types.
type tracerAdapter struct{ t Tracer }

func (a tracerAdapter) OpStart(op obs.Op)  { a.t.OpStart(toTraceOp(op)) }
func (a tracerAdapter) OpEnd(ev obs.Event) { a.t.OpEnd(toTraceEvent(ev)) }

func toTraceOp(op obs.Op) TraceOp {
	return TraceOp{Kind: op.Kind, Name: op.Name, Worker: op.Worker, Seq: op.Seq, Start: op.Start}
}

func toTraceEvent(ev obs.Event) TraceEvent {
	return TraceEvent{
		TraceOp:   toTraceOp(ev.Op),
		Reads:     ev.Reads,
		Writes:    ev.Writes,
		CacheHits: ev.CacheHits,
		Results:   ev.Results,
		Duration:  ev.Duration,
		Bound:     ev.Bound,
		Ratio:     ev.Ratio,
	}
}

// BoundError is the strict-mode sentinel failure: the full trace of the
// operation whose measured reads exceeded MaxRatio·bound + Slack. It wraps
// ErrBoundExceeded.
type BoundError struct {
	Event    TraceEvent
	MaxRatio float64
	Slack    float64
}

func (e *BoundError) Error() string {
	return fmt.Sprintf(
		"%v: %s/%s op %d (worker %d): %d reads > %.2g×bound+%.2g with bound %.2f pages (ratio %.2f, %d results)",
		ErrBoundExceeded, e.Event.Kind, e.Event.Name, e.Event.Seq, e.Event.Worker,
		e.Event.Reads, e.MaxRatio, e.Slack, e.Event.Bound, e.Event.Ratio, e.Event.Results)
}

// Unwrap makes errors.Is(err, ErrBoundExceeded) hold.
func (e *BoundError) Unwrap() error { return ErrBoundExceeded }

// publicErr converts internal bound errors to the public *BoundError and
// leaves every other error untouched (callers wrap those with the package
// prefix as usual).
func publicErr(err error) error {
	var be *obs.BoundError
	if errors.As(err, &be) {
		return &BoundError{Event: toTraceEvent(be.Event), MaxRatio: be.MaxRatio, Slack: be.Slack}
	}
	return err
}

// HistogramBucket is one non-empty log₂ bucket covering the inclusive
// sample range [Lo, Hi] (Hi = MaxInt64 on the overflow bucket).
type HistogramBucket struct {
	Lo, Hi int64
	Count  int64
}

// Histogram summarizes a distribution of per-op samples.
type Histogram struct {
	Count, Sum, Min, Max int64
	Buckets              []HistogramBucket
}

func toHistogram(s obs.HistSnapshot) Histogram {
	h := Histogram{Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max}
	for _, b := range s.Buckets {
		h.Buckets = append(h.Buckets, HistogramBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	return h
}

// OpMetrics is one (operation, worker) metric series: per-op read, write
// and cache-hit distributions plus the bound-ratio distribution.
type OpMetrics struct {
	// Kind is the index's registry name; Name the operation; Worker the
	// batch worker (SerialWorker for serial ops and builds). Shard is the
	// shard that recorded the series inside a sharded store, NoShard
	// everywhere else.
	Kind   string
	Name   string
	Worker int
	Shard  int
	// Ops counts completed operations; Results their summed output sizes.
	Ops     int64
	Results int64
	// Reads, Writes and CacheHits distribute the op-scoped counts; their
	// Sum fields add exactly to the store-level Stats diff over the same
	// window (hits excluded — hits are the I/O the pool absorbed).
	Reads     Histogram
	Writes    Histogram
	CacheHits Histogram
	// BoundRatios distributes ⌈100·reads/bound⌉ per op (so bucket [64,127]
	// means the op ran at 0.64–1.27× its theorem bound); empty for ops with
	// no declared bound. MaxBoundRatio is the worst ratio observed.
	BoundRatios   Histogram
	MaxBoundRatio float64
}

// Metrics is a point-in-time snapshot of every metric series an index's
// store has recorded, sorted by (Name, Worker).
type Metrics struct {
	// Inflight counts operations currently between start and end.
	Inflight int64
	Ops      []OpMetrics
}

// Metrics snapshots the index's per-operation metric series. The snapshot
// is a copy; concurrent operations keep recording unaffected.
func (c core) Metrics() Metrics {
	snap := c.be.Obs().Snapshot()
	out := Metrics{Inflight: snap.Inflight}
	for _, s := range snap.Series {
		out.Ops = append(out.Ops, OpMetrics{
			Kind:          s.Kind,
			Name:          s.Name,
			Worker:        s.Worker,
			Shard:         s.Shard,
			Ops:           s.Ops,
			Results:       s.Results,
			Reads:         toHistogram(s.Reads),
			Writes:        toHistogram(s.Writes),
			CacheHits:     toHistogram(s.Hits),
			BoundRatios:   toHistogram(s.Ratios),
			MaxBoundRatio: s.MaxRatio,
		})
	}
	return out
}

// ResetMetrics drops every recorded metric series (the store-level Stats
// counters are separate; see ResetStats).
func (c core) ResetMetrics() { c.be.Obs().Reset() }

// boundFor returns the theorem bound function registered for kind, nil
// when the kind has no registry entry.
func boundFor(kind byte) obs.BoundFunc {
	if d, ok := engine.Lookup(kind); ok {
		return d.Bound
	}
	return nil
}

// evalBound evaluates bound for an index of n records returning t results
// through a pager with the given usable page size; 0 means "no bound"
// (builds, unregistered kinds).
func evalBound(bound obs.BoundFunc, pageSize, n, t int) float64 {
	if bound == nil {
		return 0
	}
	return bound(n, B(pageSize), t)
}

// startOp opens one recorded serial operation against the backend and
// returns the op-scoped counter to route the operation's I/O through plus
// the finish closure. finish must be called exactly once, with the op's
// result count, the index size n, and the bound function (nil for none);
// it folds the counter into the metric series and returns the op's I/O
// profile fields — and, with strict bounds armed, a *BoundError on breach.
func (c core) startOp(kindName, opName string) (*disk.Counter, func(results, n int, bound obs.BoundFunc) (IOProfile, error)) {
	ctr := new(disk.Counter)
	op := c.be.Obs().Begin(kindName, opName, obs.SerialWorker)
	return ctr, func(results, n int, bound obs.BoundFunc) (IOProfile, error) {
		cs := ctr.Stats()
		ev, err := c.be.Obs().End(op, obs.Measure{
			Reads:     cs.Reads,
			Writes:    cs.Writes,
			CacheHits: ctr.Hits(),
			Results:   results,
			Bound:     evalBound(bound, c.be.Pager().PageSize(), n, results),
		})
		prof := IOProfile{
			Results:    results,
			Reads:      ev.Reads,
			Writes:     ev.Writes,
			CacheHits:  ev.CacheHits,
			Bound:      ev.Bound,
			BoundRatio: ev.Ratio,
		}
		return prof, publicErr(err)
	}
}

// abortOp closes a recorded operation whose underlying query failed: the
// partial I/O still lands in the series (and the inflight gauge drops),
// but no bound is checked — the query's own error wins.
func (c core) abortOp(finish func(int, int, obs.BoundFunc) (IOProfile, error)) {
	finish(0, 0, nil)
}

// recordBuild attributes an index construction to the metric series as one
// "build" op. A constructor starts from a fresh store, so the absolute
// store counters are exactly the build's I/O. Builds declare no bound —
// the paper bounds construction space, not construction I/O.
func (c core) recordBuild(kindName string, n int) {
	op := c.be.Obs().Begin(kindName, "build", obs.SerialWorker)
	st := c.be.Stats()
	c.be.Obs().End(op, obs.Measure{
		Reads:   st.Reads,
		Writes:  st.Writes,
		Results: n,
	})
}
