package pathcache

import (
	"strings"
	"testing"
)

// Every constructor must reject invalid Options with a clear error instead
// of misbehaving later, and must accept the legal edge values.
func TestOptionsValidation(t *testing.T) {
	pts := uniformPoints(200, 1_000, 811)
	ivs := uniformIntervals(200, 1_000, 100, 813)

	cases := []struct {
		name string
		opts *Options
		want string // error substring; "" means the build must succeed
	}{
		{"nil options", nil, ""},
		{"defaults", &Options{}, ""},
		{"negative page size", &Options{PageSize: -1}, "invalid PageSize -1"},
		{"negative pool", &Options{BufferPoolPages: -4}, "invalid BufferPoolPages -4"},
		{"page size below minimum", &Options{PageSize: 32}, "page size too small"},
		{"pool of one frame", &Options{PageSize: 512, BufferPoolPages: 1}, ""},
	}

	builders := []struct {
		name  string
		build func(opts *Options) error
	}{
		{"TwoSidedIndex", func(o *Options) error {
			_, err := NewTwoSidedIndex(pts, SchemeSegmented, o)
			return err
		}},
		{"SegmentIndex", func(o *Options) error {
			_, err := NewSegmentIndex(ivs, true, o)
			return err
		}},
		{"RangeIndex", func(o *Options) error {
			_, err := NewRangeIndex(o)
			return err
		}},
		{"DynamicIndex", func(o *Options) error {
			_, err := NewDynamicIndex(o)
			return err
		}},
	}

	for _, tc := range cases {
		for _, b := range builders {
			t.Run(tc.name+"/"+b.name, func(t *testing.T) {
				err := b.build(tc.opts)
				if tc.want == "" {
					if err != nil {
						t.Fatalf("build = %v, want success", err)
					}
					return
				}
				if err == nil {
					t.Fatalf("build succeeded, want error containing %q", tc.want)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("build error %q does not contain %q", err, tc.want)
				}
				if !strings.HasPrefix(err.Error(), "pathcache: ") {
					t.Fatalf("build error %q lacks the package prefix", err)
				}
			})
		}
	}
}
