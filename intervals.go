package pathcache

import (
	"fmt"
	"math"

	"pathcache/internal/engine"
	"pathcache/internal/extint"
	"pathcache/internal/extseg"
	"pathcache/internal/record"
)

// The diagonal-corner reduction of [KRV], used by both stabbing indexes:
// interval [lo, hi] becomes the point (-lo, hi), and a stabbing query at q
// becomes the 2-sided query {x >= -q, y >= q}, since lo <= q <= hi is
// equivalent to -lo >= -q and hi >= q.

func intervalToPoint(iv Interval) Point { return Point{X: -iv.Lo, Y: iv.Hi, ID: iv.ID} }

func pointToInterval(p Point) Interval { return Interval{Lo: -p.X, Hi: p.Y, ID: p.ID} }

// StabbingIndex answers static stabbing queries ("which intervals contain
// q?") through the diagonal-corner reduction onto a 2-sided index — the
// paper's route to dynamic interval management for temporal and constraint
// databases.
type StabbingIndex struct {
	core
	ix *TwoSidedIndex
}

// NewStabbingIndex builds a static stabbing index over ivs using the given
// 2-sided scheme. Intervals with Lo = MinInt64 are rejected (the reduction
// negates Lo).
func NewStabbingIndex(ivs []Interval, scheme Scheme, opts *Options) (*StabbingIndex, error) {
	pts := make([]Point, len(ivs))
	for i, iv := range ivs {
		if iv.Lo > iv.Hi || iv.Lo == math.MinInt64 {
			return nil, fmt.Errorf("pathcache: invalid interval [%d,%d]", iv.Lo, iv.Hi)
		}
		pts[i] = intervalToPoint(iv)
	}
	ix, err := newTwoSidedIndex(pts, scheme, opts, kindStabbing)
	if err != nil {
		return nil, err
	}
	return &StabbingIndex{core: ix.core, ix: ix}, nil
}

// Stab reports every interval containing q.
func (si *StabbingIndex) Stab(q int64) ([]Interval, error) {
	ivs, _, err := si.StabProfile(q)
	return ivs, err
}

// StabProfile is Stab plus the query's I/O profile, including the exact
// page transfers attributed to this one query by an op-scoped counter.
// The reduction records exactly one "stab" op under the stabbing kind —
// not an inner 2-sided "query" — so metric series reflect the operation
// the caller asked for.
func (si *StabbingIndex) StabProfile(q int64) ([]Interval, IOProfile, error) {
	pts, prof, err := si.ix.queryAs("stab", -q, q)
	if err != nil {
		return nil, prof, err
	}
	out := make([]Interval, len(pts))
	for i, p := range pts {
		out[i] = pointToInterval(p)
	}
	return out, prof, nil
}

// Len reports the number of indexed intervals.
func (si *StabbingIndex) Len() int { return si.ix.Len() }

// Kind reports the index's registry name.
func (si *StabbingIndex) Kind() string { return si.ix.Kind() }

// Layout reports the in-page layout of the underlying 2-sided engine.
func (si *StabbingIndex) Layout() Layout { return si.ix.Layout() }

// Pages reports the storage footprint in pages.
func (si *StabbingIndex) Pages() int { return si.ix.Pages() }

// DynamicStabbingIndex is fully dynamic interval management (Section 5 via
// the diagonal-corner reduction): stabbing queries in O(log_B n + t/B) with
// amortized O(log_B n) inserts and deletes.
type DynamicStabbingIndex struct {
	core
	ix *DynamicIndex
}

// NewDynamicStabbingIndex creates an empty dynamic stabbing index.
func NewDynamicStabbingIndex(opts *Options) (*DynamicStabbingIndex, error) {
	ix, err := NewDynamicIndex(opts)
	if err != nil {
		return nil, err
	}
	return &DynamicStabbingIndex{core: ix.core, ix: ix}, nil
}

// Insert adds an interval.
func (si *DynamicStabbingIndex) Insert(iv Interval) error {
	if iv.Lo > iv.Hi || iv.Lo == math.MinInt64 {
		return fmt.Errorf("pathcache: invalid interval [%d,%d]", iv.Lo, iv.Hi)
	}
	return si.ix.Insert(intervalToPoint(iv))
}

// Delete removes an interval previously inserted with the same (Lo, Hi, ID).
func (si *DynamicStabbingIndex) Delete(iv Interval) error {
	return si.ix.Delete(intervalToPoint(iv))
}

// Stab reports every live interval containing q.
func (si *DynamicStabbingIndex) Stab(q int64) ([]Interval, error) {
	pts, err := si.ix.Query(-q, q)
	if err != nil {
		return nil, err
	}
	out := make([]Interval, len(pts))
	for i, p := range pts {
		out[i] = pointToInterval(p)
	}
	return out, nil
}

// Len reports the number of live intervals.
func (si *DynamicStabbingIndex) Len() int { return si.ix.Len() }

// Pages reports the storage footprint in pages.
func (si *DynamicStabbingIndex) Pages() int { return si.ix.Pages() }

// SegmentIndex is the external segment tree of Section 2 / Theorem 3.4.
// With caching enabled, stabbing costs O(log_B n + t/B); the uncached
// variant is the strawman of Figure 3 and pays one wasteful I/O per
// underfull cover-list on the path.
type SegmentIndex struct {
	core
	idx *extseg.Tree
}

// NewSegmentIndex builds a static segment-tree index over ivs. Intervals
// must satisfy Lo <= Hi and Hi < MaxInt64.
func NewSegmentIndex(ivs []Interval, cached bool, opts *Options) (*SegmentIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	v := extseg.Naive
	if cached {
		v = extseg.PathCached
	}
	idx, err := extseg.BuildLayout(c.be.Pager(), toRecIntervals(ivs), v, c.layout)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if err := c.be.SaveMeta(kindSegment, idx.Meta().Encode()); err != nil {
		return nil, err
	}
	c.recordBuild(engine.KindName(kindSegment), idx.Len())
	return &SegmentIndex{core: c, idx: idx}, nil
}

// Stab reports every interval containing q.
func (ix *SegmentIndex) Stab(q int64) ([]Interval, error) {
	ivs, _, err := ix.StabProfile(q)
	return ivs, err
}

// StabProfile is Stab plus the query's I/O profile, including the exact
// page transfers attributed to this one query by an op-scoped counter.
func (ix *SegmentIndex) StabProfile(q int64) ([]Interval, IOProfile, error) {
	ctr, finish := ix.startOp(engine.KindName(kindSegment), "stab")
	ivs, st, err := ix.idx.WithPager(ix.be.OpPager(ctr)).Stab(q)
	if err != nil {
		ix.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(ivs), ix.idx.Len(), boundFor(kindSegment))
	prof.PathPages = st.PathPages
	prof.ListPages = st.ListPages
	prof.UsefulIOs = st.UsefulIOs
	prof.WastefulIOs = st.WastefulIOs
	if err != nil {
		return nil, prof, err
	}
	return fromRecIntervals(ivs), prof, nil
}

// Len reports the number of indexed intervals.
func (ix *SegmentIndex) Len() int { return ix.idx.Len() }

// Kind reports the index's registry name.
func (ix *SegmentIndex) Kind() string { return engine.KindName(kindSegment) }

// Layout reports the in-page layout of the persisted structure.
func (ix *SegmentIndex) Layout() Layout { return Layout(ix.idx.Layout()) }

// Pages reports the storage footprint in pages.
func (ix *SegmentIndex) Pages() int { return ix.idx.TotalPages() }

// IntervalIndex is the external (restricted) interval tree of Theorem 3.5:
// optimal stabbing with O((n/B)·log B) pages — a log n / log B factor less
// storage than the segment tree.
type IntervalIndex struct {
	core
	idx *extint.Tree
}

// NewIntervalIndex builds a static interval-tree index over ivs.
func NewIntervalIndex(ivs []Interval, cached bool, opts *Options) (*IntervalIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	v := extint.Naive
	if cached {
		v = extint.PathCached
	}
	idx, err := extint.BuildLayout(c.be.Pager(), toRecIntervals(ivs), v, c.layout)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if err := c.be.SaveMeta(kindInterval, idx.Meta().Encode()); err != nil {
		return nil, err
	}
	c.recordBuild(engine.KindName(kindInterval), idx.Len())
	return &IntervalIndex{core: c, idx: idx}, nil
}

// Stab reports every interval containing q.
func (ix *IntervalIndex) Stab(q int64) ([]Interval, error) {
	ivs, _, err := ix.StabProfile(q)
	return ivs, err
}

// StabProfile is Stab plus the query's I/O profile, including the exact
// page transfers attributed to this one query by an op-scoped counter.
func (ix *IntervalIndex) StabProfile(q int64) ([]Interval, IOProfile, error) {
	ctr, finish := ix.startOp(engine.KindName(kindInterval), "stab")
	ivs, st, err := ix.idx.WithPager(ix.be.OpPager(ctr)).Stab(q)
	if err != nil {
		ix.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(ivs), ix.idx.Len(), boundFor(kindInterval))
	prof.PathPages = st.PathPages
	prof.ListPages = st.ListPages
	prof.UsefulIOs = st.UsefulIOs
	prof.WastefulIOs = st.WastefulIOs
	if err != nil {
		return nil, prof, err
	}
	return fromRecIntervals(ivs), prof, nil
}

// Len reports the number of indexed intervals.
func (ix *IntervalIndex) Len() int { return ix.idx.Len() }

// Kind reports the index's registry name.
func (ix *IntervalIndex) Kind() string { return engine.KindName(kindInterval) }

// Layout reports the in-page layout of the persisted structure.
func (ix *IntervalIndex) Layout() Layout { return Layout(ix.idx.Layout()) }

// Pages reports the storage footprint in pages.
func (ix *IntervalIndex) Pages() int { return ix.idx.TotalPages() }

// ensure the record types stay layout-compatible with the public ones.
var (
	_ = record.Point(Point{})
	_ = record.Interval(Interval{})
)
