package pathcache

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pathcache/internal/disk"
)

// The crash-simulation harness: for every index kind that persists, run the
// whole public build path over a CrashFile, kill it at EVERY write I/O point
// (with torn-write variants), then reopen the surviving image through the
// public Open function. The contract under test is the one DESIGN.md states
// for the on-disk format: after any crash the file either
//
//   - reopens and answers the full query battery exactly like an in-memory
//     reference (the metadata commit landed, so the whole build landed),
//   - reopens as a store but reports ErrNoIndex (the build never committed),
//     or
//   - fails to open with an error wrapping disk.ErrCorrupt (a torn write
//     was detected by a checksum).
//
// A silently wrong answer — open succeeds, queries return, results differ —
// fails the sweep.

const crashPageSize = disk.MinFilePageSize

// crashDataset is the fixed input every kind builds from: small enough that
// a full every-write sweep stays quadratic-cheap, large enough to span
// multiple pages and levels at the 128-byte page size (B = 4).
func crashPoints() []Point {
	rng := rand.New(rand.NewSource(41))
	pts := make([]Point, 28)
	for i := range pts {
		pts[i] = Point{X: rng.Int63n(1000), Y: rng.Int63n(1000), ID: uint64(i + 1)}
	}
	return pts
}

func crashIntervals() []Interval {
	rng := rand.New(rand.NewSource(43))
	ivs := make([]Interval, 24)
	for i := range ivs {
		lo := rng.Int63n(1000)
		ivs[i] = Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(200), ID: uint64(i + 1)}
	}
	return ivs
}

func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].ID < pts[j].ID
	})
}

func sortIntervals(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		if ivs[i].Hi != ivs[j].Hi {
			return ivs[i].Hi < ivs[j].Hi
		}
		return ivs[i].ID < ivs[j].ID
	})
}

func samePoints(got, want []Point) bool {
	if len(got) != len(want) {
		return false
	}
	sortPoints(got)
	sortPoints(want)
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func sameIntervals(got, want []Interval) bool {
	if len(got) != len(want) {
		return false
	}
	sortIntervals(got)
	sortIntervals(want)
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// crashKind describes one persisted index kind to sweep: how to build it
// over a File, and how to reopen the surviving image and check the full
// query battery against the in-memory reference.
type crashKind struct {
	name     string
	pageSize int
	// build runs the public build path with the given injected file and
	// page size and closes the index; it returns the first error anywhere
	// on that path.
	build func(f disk.File, ps int) error
	// check reopens the image at path and compares queries to the
	// reference; it must return an error for any mismatch and nil only for
	// an exact match.
	check func(path string) error
}

func pointQueryBattery(name string, pts []Point, query func(a, b int64) ([]Point, error), want func(a, b int64) []Point) error {
	for _, q := range [][2]int64{{0, 0}, {250, 400}, {500, 500}, {900, 100}, {1000, 1000}} {
		got, err := query(q[0], q[1])
		if err != nil {
			return fmt.Errorf("%s query(%d,%d): %w", name, q[0], q[1], err)
		}
		if !samePoints(got, want(q[0], q[1])) {
			return fmt.Errorf("%s query(%d,%d): silent mismatch: got %d results, want %d", name, q[0], q[1], len(got), len(want(q[0], q[1])))
		}
	}
	return nil
}

func stabBattery(name string, ivs []Interval, stab func(q int64) ([]Interval, error)) error {
	for _, q := range []int64{0, 150, 400, 650, 999, 1300} {
		got, err := stab(q)
		if err != nil {
			return fmt.Errorf("%s stab(%d): %w", name, q, err)
		}
		var want []Interval
		for _, iv := range ivs {
			if iv.Lo <= q && q <= iv.Hi {
				want = append(want, iv)
			}
		}
		if !sameIntervals(got, want) {
			return fmt.Errorf("%s stab(%d): silent mismatch: got %d results, want %d", name, q, len(got), len(want))
		}
	}
	return nil
}

func crashKinds() []crashKind {
	pts := crashPoints()
	ivs := crashIntervals()

	twoSidedWant := func(a, b int64) []Point {
		var want []Point
		for _, p := range pts {
			if p.X >= a && p.Y >= b {
				want = append(want, p)
			}
		}
		return want
	}

	return []crashKind{
		{
			name:     "twosided",
			pageSize: crashPageSize,
			build: func(f disk.File, ps int) error {
				ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: ps, testFile: f})
				if err != nil {
					return err
				}
				return ix.Close()
			},
			check: func(path string) error {
				ix, err := OpenTwoSidedIndex(path)
				if err != nil {
					return err
				}
				defer ix.Close()
				return pointQueryBattery("twosided", pts, ix.Query, twoSidedWant)
			},
		},
		{
			// The 3-sided skeletal nodes carry a larger payload than a
			// 128-byte page holds; sweep it at 256.
			name:     "threeside",
			pageSize: 2 * crashPageSize,
			build: func(f disk.File, ps int) error {
				ix, err := NewThreeSidedIndex(pts, &Options{PageSize: ps, testFile: f})
				if err != nil {
					return err
				}
				return ix.Close()
			},
			check: func(path string) error {
				ix, err := OpenThreeSidedIndex(path)
				if err != nil {
					return err
				}
				defer ix.Close()
				for _, q := range [][3]int64{{0, 1000, 0}, {200, 700, 300}, {450, 550, 800}, {900, 950, 0}} {
					got, err := ix.Query(q[0], q[1], q[2])
					if err != nil {
						return fmt.Errorf("threeside query%v: %w", q, err)
					}
					var want []Point
					for _, p := range pts {
						if q[0] <= p.X && p.X <= q[1] && p.Y >= q[2] {
							want = append(want, p)
						}
					}
					if !samePoints(got, want) {
						return fmt.Errorf("threeside query%v: silent mismatch: got %d results, want %d", q, len(got), len(want))
					}
				}
				return nil
			},
		},
		{
			name:     "stabbing",
			pageSize: crashPageSize,
			build: func(f disk.File, ps int) error {
				six, err := NewStabbingIndex(ivs, SchemeSegmented, &Options{PageSize: ps, testFile: f})
				if err != nil {
					return err
				}
				return six.Close()
			},
			check: func(path string) error {
				six, err := OpenStabbingIndex(path)
				if err != nil {
					return err
				}
				defer six.Close()
				return stabBattery("stabbing", ivs, six.Stab)
			},
		},
		{
			name:     "segment",
			pageSize: crashPageSize,
			build: func(f disk.File, ps int) error {
				ix, err := NewSegmentIndex(ivs, true, &Options{PageSize: ps, testFile: f})
				if err != nil {
					return err
				}
				return ix.Close()
			},
			check: func(path string) error {
				ix, err := OpenSegmentIndex(path)
				if err != nil {
					return err
				}
				defer ix.Close()
				return stabBattery("segment", ivs, ix.Stab)
			},
		},
		{
			// Interval skeletal nodes also outgrow a 128-byte page.
			name:     "interval",
			pageSize: 2 * crashPageSize,
			build: func(f disk.File, ps int) error {
				ix, err := NewIntervalIndex(ivs, true, &Options{PageSize: ps, testFile: f})
				if err != nil {
					return err
				}
				return ix.Close()
			},
			check: func(path string) error {
				ix, err := OpenIntervalIndex(path)
				if err != nil {
					return err
				}
				defer ix.Close()
				return stabBattery("interval", ivs, ix.Stab)
			},
		},
		{
			name:     "window",
			pageSize: crashPageSize,
			build: func(f disk.File, ps int) error {
				ix, err := NewWindowIndex(pts, &Options{PageSize: ps, testFile: f})
				if err != nil {
					return err
				}
				return ix.Close()
			},
			check: func(path string) error {
				ix, err := OpenWindowIndex(path)
				if err != nil {
					return err
				}
				defer ix.Close()
				for _, q := range [][4]int64{{0, 1000, 0, 1000}, {200, 700, 100, 600}, {480, 520, 480, 520}} {
					got, err := ix.Query(q[0], q[1], q[2], q[3])
					if err != nil {
						return fmt.Errorf("window query%v: %w", q, err)
					}
					var want []Point
					for _, p := range pts {
						if q[0] <= p.X && p.X <= q[1] && q[2] <= p.Y && p.Y <= q[3] {
							want = append(want, p)
						}
					}
					if !samePoints(got, want) {
						return fmt.Errorf("window query%v: silent mismatch: got %d results, want %d", q, len(got), len(want))
					}
				}
				return nil
			},
		},
	}
}

// acceptableCrashOutcome classifies a reopen/check error: nil for a clean
// error the recovery contract allows, the error itself otherwise.
func acceptableCrashOutcome(err error) error {
	switch {
	case err == nil:
		return nil // full recovery, queries matched
	case errors.Is(err, disk.ErrCorrupt):
		return nil // detected torn write
	case errors.Is(err, ErrNoIndex):
		return nil // build never committed
	default:
		return err
	}
}

// TestCrashSweepIndexes is the tentpole harness: build every persisted index
// kind over a crash-injected file, killing the process at every single write
// I/O point, and assert the surviving image never yields a silently wrong
// answer when reopened through the public API.
func TestCrashSweepIndexes(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is quadratic in build I/Os; skipped in -short")
	}
	for _, k := range crashKinds() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()

			// Instrumentation pass: a healthy build to count kill points and
			// prove the check battery passes on the intact image.
			mem := disk.NewMemFile()
			count := disk.NewCrashFile(mem, -1, 0)
			if err := k.build(count, k.pageSize); err != nil {
				t.Fatalf("instrumentation build: %v", err)
			}
			total := count.Writes()
			if total < 10 {
				t.Fatalf("build performed only %d writes; sweep would be trivial", total)
			}
			dir := t.TempDir()
			intact := filepath.Join(dir, "intact.pc")
			if err := os.WriteFile(intact, mem.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := k.check(intact); err != nil {
				t.Fatalf("intact image fails the battery: %v", err)
			}
			t.Logf("%s: sweeping %d kill points", k.name, total)

			img := filepath.Join(dir, "crashed.pc")
			recovered, noIndex, corrupt := 0, 0, 0
			// Tear variants: clean kill between writes (0), a tear inside
			// the 52-byte superblock record (13), and a half-page tear.
			for limit := int64(0); limit < total; limit++ {
				for _, torn := range []int{0, 13, k.pageSize / 2} {
					mem := disk.NewMemFile()
					cf := disk.NewCrashFile(mem, limit, torn)
					err := k.build(cf, k.pageSize)
					if !errors.Is(err, disk.ErrCrashed) {
						t.Fatalf("limit=%d torn=%d: build err = %v, want ErrCrashed", limit, torn, err)
					}
					if err := os.WriteFile(img, mem.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					cerr := k.check(img)
					if uerr := acceptableCrashOutcome(cerr); uerr != nil {
						t.Fatalf("limit=%d torn=%d: unacceptable post-crash outcome: %v", limit, torn, uerr)
					}
					switch {
					case cerr == nil:
						recovered++
					case errors.Is(cerr, ErrNoIndex):
						noIndex++
					default:
						corrupt++
					}
				}
			}
			t.Logf("%s: %d recovered, %d no-index, %d detected-corrupt", k.name, recovered, noIndex, corrupt)
			// Sanity on the sweep itself: early kills must be un-committed,
			// and at least one outcome of each flavor must appear — a sweep
			// that never recovers or never detects corruption means the
			// harness is not exercising what it claims.
			if noIndex == 0 {
				t.Error("sweep never saw ErrNoIndex — early kill points are not rolling back")
			}
			if corrupt == 0 {
				t.Error("sweep never saw a detected-corrupt image — torn writes are not being exercised")
			}
		})
	}
}
