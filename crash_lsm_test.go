package pathcache

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pathcache/internal/disk"
)

// Crash sweep for the LSM write tier. The static sweep (crash_test.go)
// checks an all-or-nothing contract: the one build either committed or it
// did not. The write tier's contract is finer-grained because every update
// is individually acknowledged behind a durable WAL append: killing the
// process at ANY write I/O point — a WAL append, a level seal, a tombstone
// rewrite, a manifest flip, a compaction — and reopening must yield exactly
//
//   - the state after every acknowledged update, plus possibly the one
//     update that was in flight when the crash hit (its WAL append may have
//     reached the file before the kill),
//   - an error wrapping disk.ErrCorrupt (a torn page was detected by a
//     checksum — on the WAL tail this is the "torn last entry" case the
//     recovery contract explicitly allows), or
//   - ErrNoIndex (the crash predates the empty tree's first manifest
//     commit).
//
// Any other recovered state — an acknowledged update missing, a deleted
// record resurrected beyond the in-flight one, a query disagreeing with the
// replayed model — fails the sweep. Verified per update via Has on every
// record the script ever touches plus full query/stab batteries, so a wrong
// answer cannot hide in an unprobed region.

// lsmOp is one scripted operation against the write tier.
type lsmOp struct {
	op string // "insert", "delete", "flush", "compact"
	pt Point
}

// lsmCrashScript builds the fixed op stream every base kind replays. With
// MemtableEntries=4 it crosses two automatic flushes (the second cascading
// a level merge), tombstones sealed records, forces an explicit flush and a
// full compaction, and leaves the WAL non-empty at close so even the intact
// image exercises replay on reopen.
func lsmCrashScript(interval bool) []lsmOp {
	rng := rand.New(rand.NewSource(47))
	point := func(i int) Point {
		if interval {
			lo := rng.Int63n(1000)
			return IntervalToDynamicPoint(Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(200), ID: uint64(i)})
		}
		return Point{X: rng.Int63n(1000), Y: rng.Int63n(1000), ID: uint64(i)}
	}
	var ops []lsmOp
	pts := make([]Point, 0, 16)
	for i := 1; i <= 9; i++ { // two automatic flushes at 4 and 8
		p := point(i)
		pts = append(pts, p)
		ops = append(ops, lsmOp{op: "insert", pt: p})
	}
	ops = append(ops,
		lsmOp{op: "delete", pt: pts[1]}, // tombstones sealed copies
		lsmOp{op: "delete", pt: pts[6]},
		lsmOp{op: "flush"}, // seals insert #9 + both tombstones
	)
	for i := 10; i <= 11; i++ {
		p := point(i)
		pts = append(pts, p)
		ops = append(ops, lsmOp{op: "insert", pt: p})
	}
	ops = append(ops,
		lsmOp{op: "compact"}, // flush + full rebuild: compaction write points
		lsmOp{op: "insert", pt: point(12)},
		lsmOp{op: "delete", pt: pts[4]},
		// no trailing flush: the surviving WAL forces replay on reopen
	)
	return ops
}

// lsmModel computes the live record set after the first acked ops.
func lsmModel(script []lsmOp, acked int) []Point {
	live := make(map[Point]bool)
	for _, o := range script[:acked] {
		switch o.op {
		case "insert":
			live[o.pt] = true
		case "delete":
			delete(live, o.pt)
		}
	}
	out := make([]Point, 0, len(live))
	for p := range live {
		out = append(out, p)
	}
	return out
}

// lsmScriptPoints lists every distinct record the script touches — the Has
// probe set that pins per-record liveness exactly.
func lsmScriptPoints(script []lsmOp) []Point {
	seen := make(map[Point]bool)
	var out []Point
	for _, o := range script {
		if o.op != "insert" && o.op != "delete" {
			continue
		}
		if !seen[o.pt] {
			seen[o.pt] = true
			out = append(out, o.pt)
		}
	}
	return out
}

type lsmCrashBase struct {
	name     string
	pageSize int
	interval bool // records are diagonal-corner interval encodings
	hasQuery bool // base answers 2-sided Query
	hasStab  bool // base answers Stab
}

func lsmCrashBases() []lsmCrashBase {
	return []lsmCrashBase{
		{"twosided", crashPageSize, false, true, false},
		{"threeside", 2 * crashPageSize, false, true, false},
		{"stabbing", crashPageSize, true, true, true},
		{"segment", crashPageSize, true, false, true},
		{"interval", 2 * crashPageSize, true, false, true},
		{"window", crashPageSize, false, true, false},
	}
}

// buildLSMCrash replays the script through the public write path over f,
// reporting how many ops were acknowledged before the first error. A nil
// error means the whole script ran and the index closed cleanly.
func buildLSMCrash(f disk.File, base string, ps int, script []lsmOp) (acked int, err error) {
	ix, err := BuildDynamic(base, nil, &Options{PageSize: ps, MemtableEntries: 4, testFile: f})
	if err != nil {
		return 0, err
	}
	for _, o := range script {
		switch o.op {
		case "insert":
			_, err = ix.Insert(o.pt)
		case "delete":
			_, err = ix.Delete(o.pt)
		case "flush":
			err = ix.Flush()
		case "compact":
			err = ix.Compact()
		}
		if err != nil {
			return acked, err
		}
		acked++
	}
	return acked, ix.Close()
}

// checkLSMState verifies the reopened index matches one candidate live set
// exactly: live count, per-record Has, and the base's query batteries.
func checkLSMState(ix *LSMIndex, b lsmCrashBase, script []lsmOp, live []Point) error {
	if ix.Len() != len(live) {
		return fmt.Errorf("Len = %d, want %d", ix.Len(), len(live))
	}
	isLive := make(map[Point]bool, len(live))
	for _, p := range live {
		isLive[p] = true
	}
	for _, p := range lsmScriptPoints(script) {
		got, _, err := ix.Has(p)
		if err != nil {
			return fmt.Errorf("has %v: %w", p, err)
		}
		if got != isLive[p] {
			return fmt.Errorf("has %v = %v, want %v", p, got, isLive[p])
		}
	}
	if b.hasQuery {
		query := func(a, bb int64) ([]Point, error) {
			pts, _, err := ix.Query(a, bb)
			return pts, err
		}
		want := func(a, bb int64) []Point {
			var out []Point
			for _, p := range live {
				if p.X >= a && p.Y >= bb {
					out = append(out, p)
				}
			}
			return out
		}
		for _, q := range [][2]int64{{math.MinInt64, math.MinInt64}, {0, 0}, {250, 400}, {700, 100}} {
			got, err := query(q[0], q[1])
			if err != nil {
				return fmt.Errorf("query(%d,%d): %w", q[0], q[1], err)
			}
			if !samePoints(got, want(q[0], q[1])) {
				return fmt.Errorf("query(%d,%d): got %d results, want %d", q[0], q[1], len(got), len(want(q[0], q[1])))
			}
		}
	}
	if b.hasStab {
		var ivs []Interval
		for _, p := range live {
			ivs = append(ivs, DynamicPointToInterval(p))
		}
		return stabBattery("lsm/"+b.name, ivs, func(q int64) ([]Interval, error) {
			out, _, err := ix.Stab(q)
			return out, err
		})
	}
	return nil
}

// checkLSMCrash reopens the surviving image and classifies the outcome. A
// successful open must match the model after acked ops or after acked+1
// (the in-flight op's WAL append may have landed before the kill); a failed
// open or a query hitting a torn page must wrap ErrCorrupt or ErrNoIndex.
func checkLSMCrash(path string, b lsmCrashBase, script []lsmOp, acked int) error {
	ix, err := OpenDynamic(path)
	if err != nil {
		return err
	}
	defer ix.Close()
	err = checkLSMState(ix, b, script, lsmModel(script, acked))
	if err == nil || errors.Is(err, disk.ErrCorrupt) {
		return err
	}
	if acked < len(script) {
		if err2 := checkLSMState(ix, b, script, lsmModel(script, acked+1)); err2 == nil || errors.Is(err2, disk.ErrCorrupt) {
			return err2
		}
	}
	return fmt.Errorf("matches neither acked=%d nor acked+1 state: %w", acked, err)
}

// TestCrashSweepLSM kills the write tier at every write I/O point of the
// scripted op stream (with torn-write variants) for every base kind, and
// asserts the reopened index never yields a silently wrong answer: it holds
// exactly the acknowledged updates (± the one in flight) or fails loudly.
func TestCrashSweepLSM(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is quadratic in script I/Os; skipped in -short")
	}
	for _, b := range lsmCrashBases() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			script := lsmCrashScript(b.interval)

			// Instrumentation pass: a healthy run to count kill points and
			// prove the battery passes on the intact image (including the
			// WAL replay its unflushed tail forces).
			mem := disk.NewMemFile()
			count := disk.NewCrashFile(mem, -1, 0)
			acked, err := buildLSMCrash(count, b.name, b.pageSize, script)
			if err != nil {
				t.Fatalf("instrumentation run: %v", err)
			}
			if acked != len(script) {
				t.Fatalf("instrumentation run acked %d of %d ops", acked, len(script))
			}
			total := count.Writes()
			if total < 20 {
				t.Fatalf("script performed only %d writes; sweep would be trivial", total)
			}
			dir := t.TempDir()
			intact := filepath.Join(dir, "intact.pc")
			if err := os.WriteFile(intact, mem.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := checkLSMCrash(intact, b, script, len(script)); err != nil {
				t.Fatalf("intact image fails the battery: %v", err)
			}
			t.Logf("%s: sweeping %d kill points", b.name, total)

			img := filepath.Join(dir, "crashed.pc")
			recovered, noIndex, corrupt := 0, 0, 0
			for limit := int64(0); limit < total; limit++ {
				for _, torn := range []int{0, 13, b.pageSize / 2} {
					mem := disk.NewMemFile()
					cf := disk.NewCrashFile(mem, limit, torn)
					acked, err := buildLSMCrash(cf, b.name, b.pageSize, script)
					if !errors.Is(err, disk.ErrCrashed) {
						t.Fatalf("limit=%d torn=%d: run err = %v, want ErrCrashed", limit, torn, err)
					}
					if err := os.WriteFile(img, mem.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					cerr := checkLSMCrash(img, b, script, acked)
					if uerr := acceptableCrashOutcome(cerr); uerr != nil {
						t.Fatalf("limit=%d torn=%d acked=%d: unacceptable post-crash outcome: %v", limit, torn, acked, uerr)
					}
					switch {
					case cerr == nil:
						recovered++
					case errors.Is(cerr, ErrNoIndex):
						noIndex++
					default:
						corrupt++
					}
				}
			}
			t.Logf("%s: %d recovered, %d no-index, %d detected-corrupt", b.name, recovered, noIndex, corrupt)
			if recovered == 0 {
				t.Error("sweep never recovered a committed state — WAL replay is not being exercised")
			}
			if noIndex == 0 {
				t.Error("sweep never saw ErrNoIndex — pre-commit kill points are not rolling back")
			}
			if corrupt == 0 {
				t.Error("sweep never saw a detected-corrupt image — torn writes are not being exercised")
			}
		})
	}
}
