package pathcache

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// Property suite for the runtime bound sentinels: every persisted kind,
// built at randomized sizes and page sizes with strict bounds armed — and
// under every page layout × prefetch variant — must answer a battery of
// randomized queries without ever breaching its declared theorem bound
// (reads ≤ DefaultMaxRatio·bound + DefaultSlack). The layout variants prove
// the theorem sentinels hold verbatim under LayoutEytzinger (layouts touch
// identical pages), and the prefetch variant proves warmed pages never
// inflate measured reads — prefetched pages surface as cache hits, which the
// sentinels do not count.
// This is the executable form of Theorems 3.2–3.5 and the window
// extension: if an index structure regresses to more I/O than its theorem
// allows, this suite names the kind, the op, and a seed that reproduces.
//
// Reproduce one failure with:
//
//	PC_BOUNDPROP_SEED=<seed> go test -run TestBoundPropertyAllKinds

const (
	propDomain  = 100_000 // coordinate space for generated workloads
	propQueries = 24      // serial queries per battery
)

// propSeeds returns the workload seeds: the fixed list, or the single seed
// the PC_BOUNDPROP_SEED environment variable requests.
func propSeeds(t *testing.T) []int64 {
	if s := os.Getenv("PC_BOUNDPROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PC_BOUNDPROP_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{1, 7, 23}
}

// propVariant is one layout × prefetch dimension of the battery.
type propVariant struct {
	name     string
	layout   Layout
	prefetch bool
}

func propVariants() []propVariant {
	return []propVariant{
		{name: "sorted", layout: LayoutSorted},
		{name: "eytzinger", layout: LayoutEytzinger},
		{name: "eytzinger+prefetch", layout: LayoutEytzinger, prefetch: true},
	}
}

// strictProp builds the strict-mode options for one property run: the
// sentinels are armed at their defaults, and the buffer pool flips on for
// odd seeds so hit accounting rides along (hits never count as reads, so a
// pool can only help the bound). A prefetching variant forces the pool on —
// prefetch warms it — and must likewise never hurt the bound.
func strictProp(page int, rng *rand.Rand, v propVariant) *Options {
	opts := &Options{PageSize: page, StrictBounds: true, Layout: v.layout}
	if rng.Intn(2) == 1 {
		opts.BufferPoolPages = 64
	}
	if v.prefetch {
		opts.BufferPoolPages = 64
		opts.PrefetchWorkers = 2
	}
	return opts
}

func propScheme(rng *rand.Rand) Scheme {
	return []Scheme{SchemeIKO, SchemeBasic, SchemeSegmented}[rng.Intn(3)]
}

// boundKind drives one persisted kind for one (n, page, seed) instance:
// build strict, answer a serial battery plus one small batch, close. Any
// returned error is a sentinel breach (or a genuine failure).
type boundKind struct {
	name string
	run  func(n, page int, seed int64, v propVariant) error
}

var boundKinds = []boundKind{
	{"twosided", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		ix, err := NewTwoSidedIndex(uniformPoints(n, propDomain, seed), propScheme(rng), strictProp(page, rng, v))
		if err != nil {
			return err
		}
		defer ix.Close()
		for i := 0; i < propQueries; i++ {
			if _, err := ix.Query(rng.Int63n(propDomain), rng.Int63n(propDomain)); err != nil {
				return err
			}
		}
		qs := make([]TwoSidedQuery, 8)
		for i := range qs {
			qs[i] = TwoSidedQuery{A: rng.Int63n(propDomain), B: rng.Int63n(propDomain)}
		}
		_, _, err = ix.QueryBatch(qs, 4)
		return err
	}},
	{"threeside", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		ix, err := NewThreeSidedIndex(uniformPoints(n, propDomain, seed), strictProp(page, rng, v))
		if err != nil {
			return err
		}
		defer ix.Close()
		for i := 0; i < propQueries; i++ {
			a1, a2 := rng.Int63n(propDomain), rng.Int63n(propDomain)
			if a1 > a2 {
				a1, a2 = a2, a1
			}
			if _, err := ix.Query(a1, a2, rng.Int63n(propDomain)); err != nil {
				return err
			}
		}
		qs := make([]ThreeSidedQuery, 8)
		for i := range qs {
			a1, a2 := rng.Int63n(propDomain), rng.Int63n(propDomain)
			if a1 > a2 {
				a1, a2 = a2, a1
			}
			qs[i] = ThreeSidedQuery{A1: a1, A2: a2, B: rng.Int63n(propDomain)}
		}
		_, _, err = ix.QueryBatch(qs, 4)
		return err
	}},
	{"segment", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		ix, err := NewSegmentIndex(uniformIntervals(n, propDomain, propDomain/10, seed), true, strictProp(page, rng, v))
		if err != nil {
			return err
		}
		defer ix.Close()
		return propStabBattery(rng, ix.Stab, ix.StabBatch)
	}},
	{"interval", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		ix, err := NewIntervalIndex(uniformIntervals(n, propDomain, propDomain/10, seed), true, strictProp(page, rng, v))
		if err != nil {
			return err
		}
		defer ix.Close()
		return propStabBattery(rng, ix.Stab, ix.StabBatch)
	}},
	{"stabbing", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		ix, err := NewStabbingIndex(uniformIntervals(n, propDomain, propDomain/10, seed), propScheme(rng), strictProp(page, rng, v))
		if err != nil {
			return err
		}
		defer ix.Close()
		return propStabBattery(rng, ix.Stab, ix.StabBatch)
	}},
	{"window", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		ix, err := NewWindowIndex(uniformPoints(n, propDomain, seed), strictProp(page, rng, v))
		if err != nil {
			return err
		}
		defer ix.Close()
		for i := 0; i < propQueries; i++ {
			x1, x2 := rng.Int63n(propDomain), rng.Int63n(propDomain)
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			y1, y2 := rng.Int63n(propDomain), rng.Int63n(propDomain)
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			if _, err := ix.Query(x1, x2, y1, y2); err != nil {
				return err
			}
		}
		return nil
	}},
	// The dynamic write tier: the sentinels must hold not on a frozen
	// structure but across the whole lifecycle — every query runs against
	// whatever level shape the preceding updates left behind, including
	// mid-battery flush cascades and a forced full compaction. The memtable
	// threshold is drawn per run so the battery sees different level counts
	// (small thresholds → many levels, the worst case of the dynamization
	// tax the declared bound must still cover).
	{"lsm", func(n, page int, seed int64, v propVariant) error {
		rng := rand.New(rand.NewSource(seed))
		opts := strictProp(page, rng, v)
		opts.MemtableEntries = []int{16, 64, 256, 1024}[rng.Intn(4)]
		live := uniformPoints(n, propDomain, seed)
		ix, err := BuildDynamic("twosided", live, opts)
		if err != nil {
			return err
		}
		defer ix.Close()
		nextID := uint64(n + 1)
		for i := 0; i < propQueries; i++ {
			if _, _, err := ix.Query(rng.Int63n(propDomain), rng.Int63n(propDomain)); err != nil {
				return err
			}
			// An update burst between queries: enough inserts to cross
			// flush thresholds at the small settings, plus a delete so
			// tombstone pages enter the bound.
			for j := 0; j < 8; j++ {
				p := Point{X: rng.Int63n(propDomain), Y: rng.Int63n(propDomain), ID: nextID}
				nextID++
				if _, err := ix.Insert(p); err != nil {
					return err
				}
				live = append(live, p)
			}
			if len(live) > 0 && i%3 == 2 {
				k := rng.Intn(len(live))
				if _, err := ix.Delete(live[k]); err != nil {
					return err
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if _, _, err := ix.Has(live[rng.Intn(len(live))]); err != nil {
				return err
			}
			// Halfway through, rebuild everything into one level: the
			// queries after it run against the post-compaction shape.
			if i == propQueries/2 {
				if err := ix.Compact(); err != nil {
					return err
				}
			}
		}
		qs := make([]TwoSidedQuery, 8)
		for i := range qs {
			qs[i] = TwoSidedQuery{A: rng.Int63n(propDomain), B: rng.Int63n(propDomain)}
		}
		_, _, err = ix.QueryBatch(qs, 4)
		return err
	}},
}

// propStabBattery runs the shared stabbing workload: serial stabs then a small
// parallel batch, all through the strict sentinels.
func propStabBattery(rng *rand.Rand, stab func(int64) ([]Interval, error),
	batch func([]int64, int) ([][]Interval, BatchStats, error)) error {
	for i := 0; i < propQueries; i++ {
		if _, err := stab(rng.Int63n(propDomain)); err != nil {
			return err
		}
	}
	qs := make([]int64, 8)
	for i := range qs {
		qs[i] = rng.Int63n(propDomain)
	}
	_, _, err := batch(qs, 4)
	return err
}

func TestBoundPropertyAllKinds(t *testing.T) {
	sizes := []int{100, 1_000, 10_000}
	pages := []int{256, 512, 1024, 2048, 4096}
	seeds := propSeeds(t)
	for _, k := range boundKinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			for _, v := range propVariants() {
				v := v
				t.Run(v.name, func(t *testing.T) {
					t.Parallel()
					for _, seed := range seeds {
						rng := rand.New(rand.NewSource(seed * 31))
						for _, n := range sizes {
							page := pages[rng.Intn(len(pages))]
							if err := k.run(n, page, seed, v); err != nil {
								t.Fatal(shrinkFailure(k, v, n, page, seed, err))
							}
						}
					}
					if !testing.Short() && v.name == "eytzinger+prefetch" {
						// One large instance per kind, on the variant that
						// stresses every new moving part at once; page ≥ 1024
						// keeps build time sane.
						if err := k.run(100_000, 1024, seeds[0], v); err != nil {
							t.Fatal(shrinkFailure(k, v, 100_000, 1024, seeds[0], err))
						}
					}
				})
			}
		})
	}
}

// shrinkFailure minimizes a failing instance by halving n while the
// failure persists (runs are deterministic in (n, page, seed)), then
// formats the smallest reproducer. The error text itself names the
// breaching op — BoundError carries the full trace.
func shrinkFailure(k boundKind, v propVariant, n, page int, seed int64, err error) string {
	for n/2 >= 50 && k.run(n/2, page, seed, v) != nil {
		n /= 2
	}
	if rerr := k.run(n, page, seed, v); rerr != nil {
		err = rerr
	}
	return fmt.Sprintf(
		"kind %s (%s) breaches its theorem bound at n=%d page=%d seed=%d\n"+
			"reproduce: PC_BOUNDPROP_SEED=%d go test -run 'TestBoundPropertyAllKinds/%s/%s'\nerror: %v",
		k.name, v.name, n, page, seed, seed, k.name, v.name, err)
}
