package pathcache

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// TestEndToEndScenario drives the whole public API as one application
// would: a temporal database is loaded in bulk, indexed three ways, updated
// live, persisted, reopened, and queried concurrently — with every answer
// cross-checked between structures and against brute force.
func TestEndToEndScenario(t *testing.T) {
	const (
		nContracts = 8_000
		horizon    = 1 << 20
	)
	rng := rand.New(rand.NewSource(2001))
	contracts := make([]Interval, nContracts)
	for i := range contracts {
		lo := rng.Int63n(horizon)
		contracts[i] = Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(horizon/16), ID: uint64(i + 1)}
	}

	// Phase 1: bulk-load the dynamic stabbing index; mirror in a static one.
	dyn, err := NewDynamicStabbingIndex(&Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range contracts {
		if err := dyn.Insert(c); err != nil {
			t.Fatal(err)
		}
	}
	static, err := NewStabbingIndex(contracts, SchemeTwoLevel, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSegmentIndex(contracts, true, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []int64{horizon / 7, horizon / 2, horizon - 3} {
		a, err := dyn.Stab(T)
		if err != nil {
			t.Fatal(err)
		}
		b, err := static.Stab(T)
		if err != nil {
			t.Fatal(err)
		}
		c, err := seg.Stab(T)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteStab(contracts, T)
		if !sameIntervalSets(a, want) || !sameIntervalSets(b, want) || !sameIntervalSets(c, want) {
			t.Fatalf("phase 1 disagreement at T=%d: dyn=%d static=%d seg=%d brute=%d",
				T, len(a), len(b), len(c), len(want))
		}
	}

	// Phase 2: live churn on the dynamic index.
	live := map[Interval]bool{}
	for _, c := range contracts {
		live[c] = true
	}
	nextID := uint64(nContracts + 1)
	for step := 0; step < 3_000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			lo := rng.Int63n(horizon)
			iv := Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(horizon/16), ID: nextID}
			nextID++
			if err := dyn.Insert(iv); err != nil {
				t.Fatal(err)
			}
			live[iv] = true
		} else {
			var victim Interval
			k := rng.Intn(len(live))
			for iv := range live {
				if k == 0 {
					victim = iv
					break
				}
				k--
			}
			if err := dyn.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
	}
	liveSlice := make([]Interval, 0, len(live))
	for iv := range live {
		liveSlice = append(liveSlice, iv)
	}
	for _, T := range []int64{horizon / 5, horizon / 2} {
		got, err := dyn.Stab(T)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteStab(liveSlice, T); !sameIntervalSets(got, want) {
			t.Fatalf("phase 2 at T=%d: got %d want %d", T, len(got), len(want))
		}
	}

	// Phase 3: snapshot the churned state into a persistent file, reopen it,
	// and query concurrently.
	path := filepath.Join(t.TempDir(), "snapshot.pc")
	snap, err := NewStabbingIndex(liveSlice, SchemeSegmented, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStabbingIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(3000 + g)))
			for i := 0; i < 20; i++ {
				T := grng.Int63n(horizon)
				got, err := re.Stab(T)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if want := bruteStab(liveSlice, T); len(got) != len(want) {
					t.Errorf("goroutine %d at T=%d: got %d want %d", g, T, len(got), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
