package pathcache

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
	"pathcache/internal/extpst"
)

// Scheme selects a static 2-sided construction from the paper's ladder.
type Scheme int

// The scheme ladder, trading storage for the technique used.
const (
	// SchemeIKO is the prior-work baseline: no caches, O(log n + t/B)
	// queries, O(n/B) pages.
	SchemeIKO Scheme = iota
	// SchemeBasic is Lemma 3.1: full-path A/S caches, optimal queries,
	// O((n/B)·log n) pages.
	SchemeBasic
	// SchemeSegmented is Theorem 3.2: per-chunk caches, optimal queries,
	// O((n/B)·log B) pages.
	SchemeSegmented
	// SchemeTwoLevel is Theorem 4.3: regions of B·log B points with X/Y
	// lists and a second level, optimal queries, O((n/B)·log log B) pages.
	SchemeTwoLevel
	// SchemeMultilevel is Theorem 4.4: recursion to O((n/B)·log* B) pages
	// with an O(log* B) additive query term.
	SchemeMultilevel
)

func (s Scheme) String() string {
	switch s {
	case SchemeIKO:
		return "iko"
	case SchemeBasic:
		return "basic"
	case SchemeSegmented:
		return "segmented"
	case SchemeTwoLevel:
		return "two-level"
	case SchemeMultilevel:
		return "multilevel"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// TwoSidedIndex is a static index answering the paper's 2-sided queries
// {x >= a, y >= b} over a fixed point set.
type TwoSidedIndex struct {
	core
	idx    extpst.PointIndex
	scheme Scheme
	// kind is the registry kind the index was built or opened as:
	// kindTwoSided normally, kindStabbing when the index is the 2-sided
	// engine behind a StabbingIndex — operations are then recorded under
	// the stabbing kind's series and bound.
	kind byte
}

// NewTwoSidedIndex builds a static 2-sided index over pts with the given
// scheme. The input slice is not retained. With Options.Path set and a flat
// scheme (IKO, Basic, Segmented), the index persists and can be reopened
// with OpenTwoSidedIndex; the recursive schemes keep in-memory tables and
// must be rebuilt on open.
func NewTwoSidedIndex(pts []Point, scheme Scheme, opts *Options) (*TwoSidedIndex, error) {
	return newTwoSidedIndex(pts, scheme, opts, kindTwoSided)
}

func newTwoSidedIndex(pts []Point, scheme Scheme, opts *Options, kind byte) (*TwoSidedIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	rec := toRecPoints(pts)
	var idx extpst.PointIndex
	switch scheme {
	case SchemeIKO, SchemeBasic, SchemeSegmented:
		var sc extpst.Scheme
		switch scheme {
		case SchemeIKO:
			sc = extpst.IKO
		case SchemeBasic:
			sc = extpst.Basic
		default:
			sc = extpst.Segmented
		}
		idx, err = extpst.BuildLayout(c.be.Pager(), rec, sc, c.layout)
	case SchemeTwoLevel:
		idx, err = extpst.BuildTwoLevel(c.be.Pager(), rec)
	case SchemeMultilevel:
		idx, err = extpst.BuildMultilevel(c.be.Pager(), rec)
	default:
		return nil, fmt.Errorf("pathcache: unknown scheme %v", scheme)
	}
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if flat, ok := idx.(*extpst.Tree); ok {
		if err := c.be.SaveMeta(kind, flat.Meta().Encode()); err != nil {
			return nil, err
		}
	}
	c.recordBuild(engine.KindName(kind), idx.Len())
	return &TwoSidedIndex{core: c, idx: idx, scheme: scheme, kind: kind}, nil
}

// Query reports every point with X >= a and Y >= b.
func (ix *TwoSidedIndex) Query(a, b int64) ([]Point, error) {
	pts, _, err := ix.queryAs("query", a, b)
	return pts, err
}

// QueryProfile is Query plus the query's I/O profile, including the exact
// page transfers attributed to this one query by an op-scoped counter.
func (ix *TwoSidedIndex) QueryProfile(a, b int64) ([]Point, IOProfile, error) {
	return ix.queryAs("query", a, b)
}

// queryAs runs one recorded 2-sided query under the given operation name.
// It is shared by Query/QueryProfile and by the stabbing reduction, which
// records exactly one "stab" op under its own kind instead of an inner
// "query" — double-recording would break the invariant that per-op
// histogram sums equal the store-level Stats diff.
func (ix *TwoSidedIndex) queryAs(opName string, a, b int64) ([]Point, IOProfile, error) {
	ctr, finish := ix.startOp(engine.KindName(ix.kind), opName)
	pts, st, err := ix.idx.WithPager(ix.be.OpPager(ctr)).Query(a, b)
	if err != nil {
		ix.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(pts), ix.idx.Len(), boundFor(ix.kind))
	prof.PathPages = st.PathPages
	prof.ListPages = st.ListPages
	prof.UsefulIOs = st.UsefulIOs
	prof.WastefulIOs = st.WastefulIOs
	if err != nil {
		return nil, prof, err
	}
	return fromRecPoints(pts), prof, nil
}

// Len reports the number of indexed points.
func (ix *TwoSidedIndex) Len() int { return ix.idx.Len() }

// Scheme reports which construction the index uses.
func (ix *TwoSidedIndex) Scheme() Scheme { return ix.scheme }

// Layout reports the in-page layout of the persisted structure. The
// recursive schemes (two-level, multilevel) keep in-memory tables over
// sorted pages and always report LayoutSorted.
func (ix *TwoSidedIndex) Layout() Layout {
	if l, ok := ix.idx.(interface{ Layout() disk.Layout }); ok {
		return Layout(l.Layout())
	}
	return LayoutSorted
}

// Kind reports the index's registry name.
func (ix *TwoSidedIndex) Kind() string { return engine.KindName(ix.kind) }

// Pages reports the storage footprint in pages.
func (ix *TwoSidedIndex) Pages() int { return ix.idx.TotalPages() }
