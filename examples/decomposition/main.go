// Decomposition example: reproduces Figure 4 of the paper as ASCII art.
// It builds the priority-search-tree plane decomposition with B=4, draws
// the regions, runs a 2-sided query, and classifies every touched region
// as the corner, an ancestor, a right sibling, or a descendant — the four
// roles of the paper's charging argument.
//
//	go run ./examples/decomposition
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"pathcache"
)

// node mirrors the paper's in-memory PST construction with B points per
// node, for visualization; pathcache's indexes do the same on disk.
type node struct {
	pts         []pathcache.Point
	split       int64
	minY        int64
	left, right *node
}

func build(pts []pathcache.Point, b int) *node {
	if len(pts) == 0 {
		return nil
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Y != pts[j].Y {
			return pts[i].Y > pts[j].Y
		}
		return pts[i].X < pts[j].X
	})
	n := &node{}
	k := b
	if k > len(pts) {
		k = len(pts)
	}
	n.pts = append([]pathcache.Point(nil), pts[:k]...)
	n.minY = n.pts[k-1].Y
	rest := append([]pathcache.Point(nil), pts[k:]...)
	if len(rest) == 0 {
		return n
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].X < rest[j].X })
	mid := len(rest) / 2
	n.split = rest[mid].X
	n.left = build(rest[:mid], b)
	n.right = build(rest[mid:], b)
	return n
}

const (
	gridW, gridH = 72, 24
	domain       = 100
)

func main() {
	const b = 4
	rng := rand.New(rand.NewSource(17))
	pts := make([]pathcache.Point, 48)
	for i := range pts {
		pts[i] = pathcache.Point{X: rng.Int63n(domain), Y: rng.Int63n(domain), ID: uint64(i + 1)}
	}
	root := build(append([]pathcache.Point(nil), pts...), b)

	qa, qb := int64(35), int64(30)
	fmt.Printf("Figure 4 — PST decomposition with B=%d, query {x >= %d, y >= %d}\n", b, qa, qb)
	fmt.Println("legend: C corner, A ancestor, S right sibling, D descendant, . other point")
	fmt.Println()

	// Classify regions along the query.
	role := map[*node]byte{}
	var path []*node
	cur := root
	for cur != nil {
		path = append(path, cur)
		if cur.minY < qb {
			break
		}
		if qa <= cur.split {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	for _, n := range path {
		role[n] = 'A'
	}
	role[path[len(path)-1]] = 'C'
	var markDesc func(n *node)
	markDesc = func(n *node) {
		if n == nil {
			return
		}
		role[n] = 'D'
		if n.minY >= qb {
			markDesc(n.left)
			markDesc(n.right)
		}
	}
	for i := 0; i+1 < len(path); i++ {
		if path[i+1] == path[i].left && path[i].right != nil {
			sib := path[i].right
			role[sib] = 'S'
			if sib.minY >= qb {
				markDesc(sib.left)
				markDesc(sib.right)
			}
		}
	}

	// Render the plane.
	grid := make([][]byte, gridH)
	for i := range grid {
		grid[i] = make([]byte, gridW)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	var paint func(n *node)
	paint = func(n *node) {
		if n == nil {
			return
		}
		paint(n.left)
		paint(n.right)
		mark, ok := role[n]
		if !ok {
			mark = '.'
		}
		for _, p := range n.pts {
			gx := int(p.X) * (gridW - 1) / domain
			gy := (gridH - 1) - int(p.Y)*(gridH-1)/domain
			grid[gy][gx] = mark
		}
	}
	paint(root)
	// Query boundary.
	qx := int(qa) * (gridW - 1) / domain
	qy := (gridH - 1) - int(qb)*(gridH-1)/domain
	for y := 0; y <= qy; y++ {
		if grid[y][qx] == ' ' {
			grid[y][qx] = '|'
		}
	}
	for x := qx; x < gridW; x++ {
		if grid[qy][x] == ' ' {
			grid[qy][x] = '-'
		}
	}
	grid[qy][qx] = '+'
	for _, row := range grid {
		fmt.Println(string(row))
	}

	counts := map[byte]int{}
	for _, r := range role {
		counts[r]++
	}
	fmt.Printf("\nregions touched: 1 corner, %d ancestors, %d right siblings, %d descendants\n",
		counts['A'], counts['S'], counts['D'])

	// Cross-check against the real external index.
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented, &pathcache.Options{PageSize: 128})
	if err != nil {
		log.Fatal(err)
	}
	res, prof, err := ix.QueryProfile(qa, qb)
	if err != nil {
		log.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if p.X >= qa && p.Y >= qb {
			want++
		}
	}
	fmt.Printf("external index agrees: %d points (expected %d), %d useful + %d wasteful list I/Os\n",
		len(res), want, prof.UsefulIOs, prof.WastefulIOs)
	if len(res) != want {
		log.Fatal("result mismatch")
	}
}
