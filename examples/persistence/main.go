// Persistence example: build an index once onto a real file, close the
// process's state, and reopen it instantly — the pages and a one-page
// header live in the file, so no rebuild happens.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"pathcache"
)

func main() {
	dir, err := os.MkdirTemp("", "pathcache-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "events.pc")

	// Build: 300k events (timestamp, severity) onto the file.
	rng := rand.New(rand.NewSource(29))
	const n = 300_000
	pts := make([]pathcache.Point, n)
	for i := range pts {
		pts[i] = pathcache.Point{
			X:  rng.Int63n(1 << 30), // timestamp
			Y:  rng.Int63n(100),     // severity
			ID: uint64(i + 1),
		}
	}
	start := time.Now()
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented,
		&pathcache.Options{Path: path})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	want, err := ix.Query(1<<29, 90)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d events into %s (%.1f MiB) in %v\n",
		n, filepath.Base(path), float64(info.Size())/(1<<20), buildTime.Round(time.Millisecond))

	// Reopen: no rebuild — the header page restores the index.
	start = time.Now()
	re, err := pathcache.OpenTwoSidedIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	openTime := time.Since(start)

	re.ResetStats()
	got, err := re.Query(1<<29, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened in %v (%.0fx faster than building)\n",
		openTime.Round(time.Microsecond), float64(buildTime)/float64(openTime))
	fmt.Printf("query after reopen: %d recent high-severity events in %d page reads\n",
		len(got), re.Stats().Reads)
	if len(got) != len(want) {
		log.Fatalf("reopened index disagrees: %d vs %d", len(got), len(want))
	}
	fmt.Println("reopened results match the original index")
}
