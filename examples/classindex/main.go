// Class-hierarchy indexing example, the object-oriented-database motivation
// the paper takes from [KRV]: answering "instances of class C (including
// subclasses) with attribute >= v" in one index.
//
// Classes are numbered by preorder over the hierarchy, so the instances of
// C's subtree occupy the contiguous class-id window [pre(C), post(C)]. An
// instance becomes the point (classID, attribute) and the query becomes the
// 3-sided query {pre(C) <= x <= post(C), y >= v} — exactly Theorem 3.3.
//
//	go run ./examples/classindex
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathcache"
)

// class is a node of the hierarchy.
type class struct {
	name      string
	children  []*class
	pre, post int64 // preorder window covering the subtree
}

func number(c *class, next int64) int64 {
	c.pre = next
	next++
	for _, ch := range c.children {
		next = number(ch, next)
	}
	c.post = next - 1
	return next
}

func flatten(c *class, out map[string]*class) {
	out[c.name] = c
	for _, ch := range c.children {
		flatten(ch, out)
	}
}

func main() {
	// A small vehicle hierarchy.
	root := &class{name: "Vehicle", children: []*class{
		{name: "Land", children: []*class{
			{name: "Car", children: []*class{
				{name: "Sedan"}, {name: "SUV"},
			}},
			{name: "Truck"},
			{name: "Motorcycle"},
		}},
		{name: "Water", children: []*class{
			{name: "Sailboat"}, {name: "Ferry"},
		}},
		{name: "Air", children: []*class{
			{name: "Plane"}, {name: "Helicopter"},
		}},
	}}
	number(root, 0)
	classes := map[string]*class{}
	flatten(root, classes)

	// Leaf classes get instances; the indexed attribute is price.
	rng := rand.New(rand.NewSource(13))
	var leaves []*class
	for _, c := range classes {
		if len(c.children) == 0 {
			leaves = append(leaves, c)
		}
	}
	const instances = 120_000
	pts := make([]pathcache.Point, instances)
	for i := range pts {
		c := leaves[rng.Intn(len(leaves))]
		pts[i] = pathcache.Point{
			X:  c.pre,                      // class id
			Y:  5_000 + rng.Int63n(95_000), // price
			ID: uint64(i + 1),
		}
	}
	ix, err := pathcache.NewThreeSidedIndex(pts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d instances of %d classes in %d pages\n\n",
		ix.Len(), len(classes), ix.Pages())

	queries := []struct {
		class string
		price int64
	}{
		{"Vehicle", 99_000},
		{"Land", 95_000},
		{"Car", 80_000},
		{"Sedan", 50_000},
		{"Water", 60_000},
	}
	fmt.Println("\"instances of class C with price >= v\" (3-sided queries):")
	for _, q := range queries {
		c := classes[q.class]
		ix.ResetStats()
		res, prof, err := ix.QueryProfile(c.pre, c.post, q.price)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s window [%d..%d]  price >= %-6d -> %6d instances, %3d page reads (%d wasteful)\n",
			q.class, c.pre, c.post, q.price, len(res), ix.Stats().Reads, prof.WastefulIOs)
	}

	// Sanity: the Car subtree equals Sedan + SUV at any threshold.
	car := classes["Car"]
	carAll, err := ix.Query(car.pre, car.post, 0)
	if err != nil {
		log.Fatal(err)
	}
	sedan, _ := ix.Query(classes["Sedan"].pre, classes["Sedan"].post, 0)
	suv, _ := ix.Query(classes["SUV"].pre, classes["SUV"].post, 0)
	fmt.Printf("\ncontainment check: |Car|=%d = |Sedan|+|SUV| = %d+%d\n",
		len(carAll), len(sedan), len(suv))
	if len(carAll) != len(sedan)+len(suv) {
		log.Fatal("hierarchy containment violated")
	}
}
