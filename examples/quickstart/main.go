// Quickstart: build a static 2-sided index over random points, run a few
// queries, and inspect the I/O accounting that makes the paper's bounds
// visible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathcache"
)

func main() {
	const n = 200_000
	rng := rand.New(rand.NewSource(7))

	// A relation with two indexed attributes, e.g. (salary, age).
	pts := make([]pathcache.Point, n)
	for i := range pts {
		pts[i] = pathcache.Point{
			X:  rng.Int63n(200_000), // salary
			Y:  rng.Int63n(60) + 20, // age
			ID: uint64(i + 1),       // tuple id
		}
	}

	// The two-level scheme of Theorem 4.3: optimal O(log_B n + t/B) queries
	// in O((n/B)·log log B) pages.
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeTwoLevel, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points in %d pages (B=%d records/page)\n\n",
		ix.Len(), ix.Pages(), pathcache.B(pathcache.DefaultPageSize))

	// "Employees with salary >= 150k and age >= 60."
	for _, q := range []struct{ salary, age int64 }{
		{150_000, 60},
		{190_000, 30},
		{100_000, 75},
	} {
		ix.ResetStats()
		res, prof, err := ix.QueryProfile(q.salary, q.age)
		if err != nil {
			log.Fatal(err)
		}
		st := ix.Stats()
		fmt.Printf("salary >= %-7d age >= %-3d -> %5d tuples, %3d page reads "+
			"(%d path, %d list; %d useful, %d wasteful)\n",
			q.salary, q.age, len(res), st.Reads,
			prof.PathPages, prof.ListPages, prof.UsefulIOs, prof.WastefulIOs)
	}

	fmt.Println("\nThe same queries through the uncached IKO baseline:")
	base, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeIKO, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []struct{ salary, age int64 }{
		{150_000, 60},
		{190_000, 30},
		{100_000, 75},
	} {
		base.ResetStats()
		res, err := base.Query(q.salary, q.age)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("salary >= %-7d age >= %-3d -> %5d tuples, %3d page reads\n",
			q.salary, q.age, len(res), base.Stats().Reads)
	}
	fmt.Printf("\nstorage: two-level %d pages vs IKO %d pages — the paper's "+
		"space-for-time trade.\n", ix.Pages(), base.Pages())
}
