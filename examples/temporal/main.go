// Temporal database example: dynamic interval management, the application
// Section 1 of the paper singles out. Employee contracts are validity
// intervals [from, to]; "who was employed at time T" is a stabbing query,
// answered optimally through the diagonal-corner reduction onto the dynamic
// 2-sided structure of Theorem 5.1 — inserts and deletes included.
//
// A B+-tree on the start time answers the same question only by scanning
// every contract starting before T, which this example measures for
// contrast.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathcache"
)

func main() {
	const (
		contracts = 50_000
		horizon   = 1_000_000 // timeline, e.g. minutes since epoch
	)
	rng := rand.New(rand.NewSource(11))

	idx, err := pathcache.NewDynamicStabbingIndex(nil)
	if err != nil {
		log.Fatal(err)
	}
	// The 1-D baseline: B+-tree keyed on contract start time.
	bt, err := pathcache.NewRangeIndex(nil)
	if err != nil {
		log.Fatal(err)
	}

	all := make([]pathcache.Interval, contracts)
	endOf := make(map[uint64]int64, contracts)
	for i := range all {
		from := rng.Int63n(horizon)
		iv := pathcache.Interval{Lo: from, Hi: from + 1 + rng.Int63n(50_000), ID: uint64(i + 1)}
		all[i] = iv
		endOf[iv.ID] = iv.Hi
		if err := idx.Insert(iv); err != nil {
			log.Fatal(err)
		}
		if err := bt.Insert(iv.Lo, iv.ID); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d contracts: stabbing index %d pages, B+-tree %d pages\n\n",
		idx.Len(), idx.Pages(), bt.Pages())

	// Terminate a third of the contracts (deletions).
	for _, iv := range all[:contracts/3] {
		if err := idx.Delete(iv); err != nil {
			log.Fatal(err)
		}
		if err := bt.Delete(iv.Lo, iv.ID); err != nil {
			log.Fatal(err)
		}
	}
	live := all[contracts/3:]
	fmt.Printf("terminated %d contracts; %d remain\n\n", contracts/3, idx.Len())

	fmt.Println("\"who was employed at time T\":")
	for _, T := range []int64{horizon / 10, horizon / 2, horizon - 10_000} {
		idx.ResetStats()
		hits, err := idx.Stab(T)
		if err != nil {
			log.Fatal(err)
		}
		stabReads := idx.Stats().Reads

		bt.ResetStats()
		scanHits, scanned := 0, 0
		err = bt.Range(0, T, func(_ int64, id uint64) bool {
			scanned++
			if endOf[id] >= T {
				scanHits++
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		btReads := bt.Stats().Reads

		if len(hits) != scanHits {
			log.Fatalf("mismatch at T=%d: stabbing %d vs scan %d", T, len(hits), scanHits)
		}
		fmt.Printf("T=%-8d %5d employed | stabbing index: %4d reads | "+
			"B+-tree scan: %6d reads over %6d candidates (%.0fx more I/O)\n",
			T, len(hits), stabReads, btReads, scanned,
			float64(btReads)/float64(max64(stabReads, 1)))
	}
	_ = live
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
