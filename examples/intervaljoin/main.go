// Interval join example: report every overlapping pair between two interval
// relations — the "interval intersection" workload the paper's abstract
// names as an application of 2-sided searching.
//
// Intervals [a1,a2] and [b1,b2] overlap iff a1 <= b2 and b1 <= a2. The join
// indexes relation R once and, for each s in S, asks one stabbing query for
// the intervals of R containing s.Lo plus one 1-D range query (via the
// B+-tree on R's left endpoints) for the intervals of R starting inside s —
// together exactly the overlapping pairs, each found once.
//
//	go run ./examples/intervaljoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathcache"
)

func main() {
	const (
		nR      = 40_000
		nS      = 1_000
		horizon = 1_000_000
	)
	rng := rand.New(rand.NewSource(23))
	gen := func(n int, idBase uint64) []pathcache.Interval {
		out := make([]pathcache.Interval, n)
		for i := range out {
			lo := rng.Int63n(horizon)
			out[i] = pathcache.Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(2_000), ID: idBase + uint64(i)}
		}
		return out
	}
	R := gen(nR, 1)
	S := gen(nS, 1_000_000)

	// Index R twice: a stabbing index (2-sided under the diagonal-corner
	// reduction) and a B+-tree on left endpoints.
	stab, err := pathcache.NewStabbingIndex(R, pathcache.SchemeTwoLevel, nil)
	if err != nil {
		log.Fatal(err)
	}
	starts, err := pathcache.NewRangeIndex(nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range R {
		if err := starts.Insert(r.Lo, r.ID); err != nil {
			log.Fatal(err)
		}
	}

	stab.ResetStats()
	starts.ResetStats()
	pairs := 0
	for _, s := range S {
		// R-intervals that contain s.Lo ...
		hits, err := stab.Stab(s.Lo)
		if err != nil {
			log.Fatal(err)
		}
		pairs += len(hits)
		// ... plus R-intervals that start strictly inside (s.Lo, s.Hi].
		err = starts.Range(s.Lo+1, s.Hi, func(int64, uint64) bool {
			pairs++
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	ios := stab.Stats().Reads + starts.Stats().Reads

	// Verify against a brute-force join on a sample.
	brute := 0
	for _, s := range S {
		for _, r := range R {
			if r.Lo <= s.Hi && s.Lo <= r.Hi {
				brute++
			}
		}
	}
	fmt.Printf("joined |R|=%d with |S|=%d: %d overlapping pairs in %d page reads (%.1f per probe)\n",
		nR, nS, pairs, ios, float64(ios)/float64(nS))
	fmt.Printf("brute-force check: %d pairs — %v\n", brute, brute == pairs)
	if brute != pairs {
		log.Fatal("join result mismatch")
	}
}
