package pathcache

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pathcache/internal/shard"
)

// This file is the scatter-gather read/write path of a Sharded store.
// Every operation runs against one consistent router snapshot: the planner
// prunes the shard range by the predicate's routing-key interval, each
// selected shard answers through its own engine (its own pool, counters,
// metric series and bound sentinels — a sub-query must still respect its
// kind's theorem bound at the shard's size), and the gather step merges in
// canonical order, so a sharded store returns byte-identical results to a
// single store holding the same records.

// ShardProfile is one shard's I/O contribution to a scatter-gathered
// serial operation.
type ShardProfile struct {
	Shard int
	IOProfile
}

// ShardBatchStats is one shard's batch execution summary: the sub-batch it
// answered plus its exact BatchStats, whose Reads/Writes sum to that
// shard's store-level Stats diff over the batch.
type ShardBatchStats struct {
	Shard   int
	Queries int
	Stats   BatchStats
}

// canonicalPoints sorts pts by (X, Y, ID) — the merge order every sharded
// point query returns.
func canonicalPoints(pts []Point) {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].X != pts[b].X {
			return pts[a].X < pts[b].X
		}
		if pts[a].Y != pts[b].Y {
			return pts[a].Y < pts[b].Y
		}
		return pts[a].ID < pts[b].ID
	})
}

// canonicalIntervals sorts ivs by (Lo, Hi, ID).
func canonicalIntervals(ivs []Interval) {
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].Lo != ivs[b].Lo {
			return ivs[a].Lo < ivs[b].Lo
		}
		if ivs[a].Hi != ivs[b].Hi {
			return ivs[a].Hi < ivs[b].Hi
		}
		return ivs[a].ID < ivs[b].ID
	})
}

func (s *Sharded) kindError(op string) error {
	return fmt.Errorf("pathcache: %s unsupported for %s shards", op, s.ContentKind())
}

// stabFrom plans the shard range of a stabbing query at q: interval kinds
// route by Lo (so only shards with a split key <= q can hold a container),
// while "lsm" stores the diagonal-corner encoding X = -Lo.
func stabRange(kind byte, splits []int64, q int64, n int) (int, int) {
	if kind == kindLSM {
		if q == math.MinInt64 {
			return 0, n // -q is unrepresentable; consult everyone
		}
		return shard.Suffix(splits, -q), n
	}
	return 0, shard.Prefix(splits, q)
}

// gatherSerial runs one serial operation over the shard range [from, to)
// of a snapshot, collecting each shard's profile.
func gatherSerial(shards []shard.Shard, from, to int, profs *[]ShardProfile, run func(i int, ix Index) (IOProfile, error)) error {
	for i := from; i < to; i++ {
		ix, release, err := acquireShard(shards[i])
		if err != nil {
			return err
		}
		prof, err := run(i, ix)
		if rerr := release(); err == nil {
			err = rerr
		}
		if err != nil {
			return err
		}
		*profs = append(*profs, ShardProfile{Shard: i, IOProfile: prof})
	}
	return nil
}

// Query answers the 2-sided query {x >= a, y >= b} across every shard
// whose key range can hold a match, merging in (X, Y, ID) order.
// Supported by "twosided" and "lsm" shards.
func (s *Sharded) Query(a, b int64) ([]Point, error) {
	pts, _, err := s.QueryProfile(a, b)
	return pts, err
}

// QueryProfile is Query plus each consulted shard's exact I/O profile.
func (s *Sharded) QueryProfile(a, b int64) ([]Point, []ShardProfile, error) {
	if s.kind != kindTwoSided && s.kind != kindLSM {
		return nil, nil, s.kindError("Query")
	}
	var out []Point
	var profs []ShardProfile
	err := s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		out, profs = nil, nil
		return gatherSerial(shards, shard.Suffix(splits, a), len(shards), &profs, func(_ int, ix Index) (IOProfile, error) {
			var pts []Point
			var prof IOProfile
			var err error
			switch t := ix.(type) {
			case *TwoSidedIndex:
				pts, prof, err = t.QueryProfile(a, b)
			case *LSMIndex:
				pts, prof, err = t.Query(a, b)
			}
			out = append(out, pts...)
			return prof, err
		})
	})
	if err != nil {
		return nil, nil, err
	}
	canonicalPoints(out)
	return out, profs, nil
}

// QueryThreeSided answers the 3-sided query {a1 <= x <= a2, y >= b} across
// the shards overlapping [a1, a2]. Supported by "threeside" shards.
func (s *Sharded) QueryThreeSided(a1, a2, b int64) ([]Point, error) {
	pts, _, err := s.QueryThreeSidedProfile(a1, a2, b)
	return pts, err
}

// QueryThreeSidedProfile is QueryThreeSided plus per-shard profiles.
func (s *Sharded) QueryThreeSidedProfile(a1, a2, b int64) ([]Point, []ShardProfile, error) {
	if s.kind != kindThreeSide {
		return nil, nil, s.kindError("QueryThreeSided")
	}
	var out []Point
	var profs []ShardProfile
	err := s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		out, profs = nil, nil
		from, to := shard.Overlap(splits, a1, a2)
		return gatherSerial(shards, from, to, &profs, func(_ int, ix Index) (IOProfile, error) {
			pts, prof, err := ix.(*ThreeSidedIndex).QueryProfile(a1, a2, b)
			out = append(out, pts...)
			return prof, err
		})
	})
	if err != nil {
		return nil, nil, err
	}
	canonicalPoints(out)
	return out, profs, nil
}

// WindowQuery answers the 4-sided query [x1, x2] × [y1, y2] across the
// shards overlapping [x1, x2]. Supported by "window" shards.
func (s *Sharded) WindowQuery(x1, x2, y1, y2 int64) ([]Point, error) {
	pts, _, err := s.WindowQueryProfile(x1, x2, y1, y2)
	return pts, err
}

// WindowQueryProfile is WindowQuery plus per-shard profiles.
func (s *Sharded) WindowQueryProfile(x1, x2, y1, y2 int64) ([]Point, []ShardProfile, error) {
	if s.kind != kindWindow {
		return nil, nil, s.kindError("WindowQuery")
	}
	var out []Point
	var profs []ShardProfile
	err := s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		out, profs = nil, nil
		from, to := shard.Overlap(splits, x1, x2)
		return gatherSerial(shards, from, to, &profs, func(_ int, ix Index) (IOProfile, error) {
			pts, prof, err := ix.(*WindowIndex).QueryProfile(x1, x2, y1, y2)
			out = append(out, pts...)
			return prof, err
		})
	})
	if err != nil {
		return nil, nil, err
	}
	canonicalPoints(out)
	return out, profs, nil
}

// Stab reports every interval containing q, merged in (Lo, Hi, ID) order.
// Supported by "segment", "interval", "stabbing" and "lsm" (on stabbing or
// interval bases) shards.
func (s *Sharded) Stab(q int64) ([]Interval, error) {
	ivs, _, err := s.StabProfile(q)
	return ivs, err
}

// StabProfile is Stab plus per-shard profiles.
func (s *Sharded) StabProfile(q int64) ([]Interval, []ShardProfile, error) {
	switch s.kind {
	case kindSegment, kindInterval, kindStabbing, kindLSM:
	default:
		return nil, nil, s.kindError("Stab")
	}
	var out []Interval
	var profs []ShardProfile
	err := s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		out, profs = nil, nil
		from, to := stabRange(s.kind, splits, q, len(shards))
		return gatherSerial(shards, from, to, &profs, func(_ int, ix Index) (IOProfile, error) {
			var ivs []Interval
			var prof IOProfile
			var err error
			switch t := ix.(type) {
			case *SegmentIndex:
				ivs, prof, err = t.StabProfile(q)
			case *IntervalIndex:
				ivs, prof, err = t.StabProfile(q)
			case *StabbingIndex:
				ivs, prof, err = t.StabProfile(q)
			case *LSMIndex:
				ivs, prof, err = t.Stab(q)
			}
			out = append(out, ivs...)
			return prof, err
		})
	})
	if err != nil {
		return nil, nil, err
	}
	canonicalIntervals(out)
	return out, profs, nil
}

// Has reports whether the exact record (X, Y, ID) is live, consulting only
// the owning shard. Supported by "lsm" shards.
func (s *Sharded) Has(p Point) (bool, IOProfile, error) {
	if s.kind != kindLSM {
		return false, IOProfile{}, s.kindError("Has")
	}
	var ok bool
	var prof IOProfile
	err := s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		i := shard.Locate(splits, p.X)
		ix, release, err := acquireShard(shards[i])
		if err != nil {
			return err
		}
		ok, prof, err = ix.(*LSMIndex).Has(p)
		if rerr := release(); err == nil {
			err = rerr
		}
		return err
	})
	return ok, prof, err
}

// Insert routes a record to its owning shard's write tier. Supported by
// "lsm" shards; updates across all shards are serialized, like a single
// store's.
func (s *Sharded) Insert(p Point) (IOProfile, error) {
	return s.update("Insert", p)
}

// Delete tombstones a record previously inserted with the same (X, Y, ID)
// in its owning shard. Supported by "lsm" shards.
func (s *Sharded) Delete(p Point) (IOProfile, error) {
	return s.update("Delete", p)
}

func (s *Sharded) update(op string, p Point) (IOProfile, error) {
	if s.kind != kindLSM {
		return IOProfile{}, s.kindError(op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IOProfile{}, ErrHandleClosed
	}
	shards, splits, _ := s.router.Snapshot()
	i := shard.Locate(splits, p.X)
	ix, release, err := acquireShard(shards[i])
	if err != nil {
		return IOProfile{}, err
	}
	var prof IOProfile
	if op == "Insert" {
		prof, err = ix.(*LSMIndex).Insert(p)
	} else {
		prof, err = ix.(*LSMIndex).Delete(p)
	}
	if rerr := release(); err == nil {
		err = rerr
	}
	return prof, err
}

// Flush seals every shard's memtable. Supported by "lsm" shards.
func (s *Sharded) Flush() error { return s.maintain("Flush") }

// Compact rebuilds every shard's levels tombstone-free. Supported by
// "lsm" shards.
func (s *Sharded) Compact() error { return s.maintain("Compact") }

func (s *Sharded) maintain(op string) error {
	if s.kind != kindLSM {
		return s.kindError(op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrHandleClosed
	}
	return s.forEachShard(func(_ int, ix Index) error {
		if op == "Flush" {
			return ix.(*LSMIndex).Flush()
		}
		return ix.(*LSMIndex).Compact()
	})
}

// scatterGather fans a batch out: sub-batches are planned per shard by the
// routing predicate, run concurrently — each against its shard's own
// engine and worker pool — and merged back into input order. Results for
// one query arriving from several shards are concatenated in shard order
// (ascending routing key), then canonicalized by the caller's less.
func scatterGather[Q, R any](s *Sharded, qs []Q, workers int,
	plan func(splits []int64, nshards int, q Q) (int, int),
	run func(ix Index, sub []Q, workers int) ([][]R, BatchStats, error),
	less func(a, b R) bool,
) ([][]R, []ShardBatchStats, error) {
	var out [][]R
	var per []ShardBatchStats
	err := s.withSnapshot(func(shards []shard.Shard, splits []int64) error {
		out = make([][]R, len(qs))
		per = make([]ShardBatchStats, len(shards))
		subs := make([][]Q, len(shards))
		idxs := make([][]int, len(shards))
		for qi, q := range qs {
			from, to := plan(splits, len(shards), q)
			for si := from; si < to; si++ {
				subs[si] = append(subs[si], q)
				idxs[si] = append(idxs[si], qi)
			}
		}
		results := make([][][]R, len(shards))
		errs := make([]error, len(shards))
		var wg sync.WaitGroup
		for si := range shards {
			per[si].Shard = si
			per[si].Queries = len(subs[si])
			if len(subs[si]) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				ix, release, err := acquireShard(shards[si])
				if err != nil {
					errs[si] = err
					return
				}
				res, st, err := run(ix, subs[si], workers)
				if rerr := release(); err == nil {
					err = rerr
				}
				results[si], per[si].Stats, errs[si] = res, st, err
			}(si)
		}
		wg.Wait()
		for si := range errs {
			if errs[si] != nil {
				return errs[si]
			}
		}
		for si := range shards {
			for j, qi := range idxs[si] {
				out[qi] = append(out[qi], results[si][j]...)
			}
		}
		for qi := range out {
			r := out[qi]
			sort.Slice(r, func(a, b int) bool { return less(r[a], r[b]) })
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, per, nil
}

// foldShardStats aggregates per-shard batch statistics: Queries is the
// input batch size (per-shard Queries count sub-queries, so a query
// touching k shards contributes k there), I/O counters sum across shards,
// and PerWorker folds by worker position.
func foldShardStats(queries int, per []ShardBatchStats) BatchStats {
	agg := BatchStats{Queries: queries}
	for _, sp := range per {
		st := sp.Stats
		if st.Workers > agg.Workers {
			agg.Workers = st.Workers
		}
		agg.Results += st.Results
		agg.Reads += st.Reads
		agg.Writes += st.Writes
		agg.CacheHits += st.CacheHits
		for w, ws := range st.PerWorker {
			for w >= len(agg.PerWorker) {
				agg.PerWorker = append(agg.PerWorker, WorkerBatchStats{})
			}
			agg.PerWorker[w].Queries += ws.Queries
			agg.PerWorker[w].Results += ws.Results
			agg.PerWorker[w].Reads += ws.Reads
			agg.PerWorker[w].Writes += ws.Writes
			agg.PerWorker[w].CacheHits += ws.CacheHits
		}
	}
	return agg
}

func pointLess(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.ID < b.ID
}

func intervalLess(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.ID < b.ID
}

// QueryBatch answers every 2-sided query across the shards, with up to
// workers goroutines per shard; out[i] matches qs[i] in (X, Y, ID) order.
func (s *Sharded) QueryBatch(qs []TwoSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out, per, err := s.QueryBatchShards(qs, workers)
	return out, foldShardStats(len(qs), per), err
}

// QueryBatchShards is QueryBatch with per-shard execution statistics.
func (s *Sharded) QueryBatchShards(qs []TwoSidedQuery, workers int) ([][]Point, []ShardBatchStats, error) {
	if s.kind != kindTwoSided && s.kind != kindLSM {
		return nil, nil, s.kindError("QueryBatch")
	}
	return scatterGather(s, qs, workers,
		func(splits []int64, n int, q TwoSidedQuery) (int, int) {
			return shard.Suffix(splits, q.A), n
		},
		func(ix Index, sub []TwoSidedQuery, workers int) ([][]Point, BatchStats, error) {
			switch t := ix.(type) {
			case *TwoSidedIndex:
				return t.QueryBatch(sub, workers)
			case *LSMIndex:
				return t.QueryBatch(sub, workers)
			}
			return nil, BatchStats{}, s.kindError("QueryBatch")
		},
		pointLess)
}

// QueryThreeSidedBatch answers every 3-sided query across the shards;
// out[i] matches qs[i] in (X, Y, ID) order.
func (s *Sharded) QueryThreeSidedBatch(qs []ThreeSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out, per, err := s.QueryThreeSidedBatchShards(qs, workers)
	return out, foldShardStats(len(qs), per), err
}

// QueryThreeSidedBatchShards is QueryThreeSidedBatch with per-shard
// statistics.
func (s *Sharded) QueryThreeSidedBatchShards(qs []ThreeSidedQuery, workers int) ([][]Point, []ShardBatchStats, error) {
	if s.kind != kindThreeSide {
		return nil, nil, s.kindError("QueryThreeSidedBatch")
	}
	return scatterGather(s, qs, workers,
		func(splits []int64, n int, q ThreeSidedQuery) (int, int) {
			return shard.Overlap(splits, q.A1, q.A2)
		},
		func(ix Index, sub []ThreeSidedQuery, workers int) ([][]Point, BatchStats, error) {
			return ix.(*ThreeSidedIndex).QueryBatch(sub, workers)
		},
		pointLess)
}

// WindowQueryBatch answers every window query across the shards; out[i]
// matches qs[i] in (X, Y, ID) order.
func (s *Sharded) WindowQueryBatch(qs []WindowQuery, workers int) ([][]Point, BatchStats, error) {
	out, per, err := s.WindowQueryBatchShards(qs, workers)
	return out, foldShardStats(len(qs), per), err
}

// WindowQueryBatchShards is WindowQueryBatch with per-shard statistics.
func (s *Sharded) WindowQueryBatchShards(qs []WindowQuery, workers int) ([][]Point, []ShardBatchStats, error) {
	if s.kind != kindWindow {
		return nil, nil, s.kindError("WindowQueryBatch")
	}
	return scatterGather(s, qs, workers,
		func(splits []int64, n int, q WindowQuery) (int, int) {
			return shard.Overlap(splits, q.X1, q.X2)
		},
		func(ix Index, sub []WindowQuery, workers int) ([][]Point, BatchStats, error) {
			return ix.(*WindowIndex).QueryBatch(sub, workers)
		},
		pointLess)
}

// StabBatch answers every stabbing query across the shards; out[i] holds
// the intervals containing qs[i] in (Lo, Hi, ID) order.
func (s *Sharded) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out, per, err := s.StabBatchShards(qs, workers)
	return out, foldShardStats(len(qs), per), err
}

// StabBatchShards is StabBatch with per-shard execution statistics.
func (s *Sharded) StabBatchShards(qs []int64, workers int) ([][]Interval, []ShardBatchStats, error) {
	switch s.kind {
	case kindSegment, kindInterval, kindStabbing, kindLSM:
	default:
		return nil, nil, s.kindError("StabBatch")
	}
	return scatterGather(s, qs, workers,
		func(splits []int64, n int, q int64) (int, int) {
			return stabRange(s.kind, splits, q, n)
		},
		func(ix Index, sub []int64, workers int) ([][]Interval, BatchStats, error) {
			switch t := ix.(type) {
			case *SegmentIndex:
				return t.StabBatch(sub, workers)
			case *IntervalIndex:
				return t.StabBatch(sub, workers)
			case *StabbingIndex:
				return t.StabBatch(sub, workers)
			case *LSMIndex:
				return t.StabBatch(sub, workers)
			}
			return nil, BatchStats{}, s.kindError("StabBatch")
		},
		intervalLess)
}
