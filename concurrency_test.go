package pathcache

import (
	"sync"
	"testing"

	"pathcache/internal/workload"
)

// Static indexes are safe for concurrent readers: queries share only the
// page store (mutex-guarded) and immutable metadata. Run with -race.
func TestConcurrentStaticQueries(t *testing.T) {
	pts := uniformPoints(10_000, 100_000, 801)
	ivs := uniformIntervals(10_000, 100_000, 10_000, 803)

	two, err := NewTwoSidedIndex(pts, SchemeTwoLevel, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewThreeSidedIndex(pts, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSegmentIndex(ivs, true, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}

	qs2 := workload.TwoSidedQueries(32, 100_000, 0.01, 805)
	qs3 := workload.ThreeSidedQueries(32, 100_000, 0.2, 0.01, 807)
	stabs := workload.StabQueries(32, 110_000, 809)

	// Reference answers, single-threaded.
	ref2 := make([]int, len(qs2))
	for i, q := range qs2 {
		r, err := two.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		ref2[i] = len(r)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				q := qs2[(g+i)%len(qs2)]
				r, err := two.Query(q.A, q.B)
				if err != nil {
					errs <- err
					return
				}
				if len(r) != ref2[(g+i)%len(qs2)] {
					t.Errorf("goroutine %d: result drift on query %d", g, i)
					return
				}
				q3 := qs3[(g+i)%len(qs3)]
				if _, err := three.Query(q3.A1, q3.A2, q3.B); err != nil {
					errs <- err
					return
				}
				if _, err := seg.Stab(stabs[(g+i)%len(stabs)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// The buffer pool is shared mutable state; concurrent readers through one
// pool must stay correct (run with -race).
func TestConcurrentQueriesThroughBufferPool(t *testing.T) {
	pts := uniformPoints(10_000, 100_000, 811)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512, BufferPoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.TwoSidedQueries(16, 100_000, 0.01, 813)
	ref := make([]int, len(qs))
	for i, q := range qs {
		r, err := ix.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = len(r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				k := (g*7 + i) % len(qs)
				r, err := ix.Query(qs[k].A, qs[k].B)
				if err != nil {
					t.Errorf("query error: %v", err)
					return
				}
				if len(r) != ref[k] {
					t.Errorf("pool drift: got %d want %d", len(r), ref[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
