package pathcache

import (
	"fmt"
	"testing"

	"pathcache/internal/workload"
)

// Every index must stay correct across extreme page sizes — B ranges from 2
// (64-byte pages) to 682 (16 KiB pages), exercising degenerate chunk
// lengths, single-page chains and deep skeletons.
func TestPageSizeSweep(t *testing.T) {
	pts := uniformPoints(3000, 50_000, 371)
	ivs := uniformIntervals(3000, 50_000, 8_000, 373)
	qs2 := workload.TwoSidedQueries(8, 50_000, 0.02, 375)
	qs3 := workload.ThreeSidedQueries(8, 50_000, 0.3, 0.02, 377)
	stabs := workload.StabQueries(8, 60_000, 379)

	for _, ps := range []int{64, 128, 256, 1024, 4096, 16384} {
		ps := ps
		t.Run(fmt.Sprintf("page%d", ps), func(t *testing.T) {
			t.Parallel()
			opts := &Options{PageSize: ps}
			if B(ps) < 2 {
				t.Skipf("B(%d) = %d < 2", ps, B(ps))
			}
			for _, sc := range allSchemes {
				ix, err := NewTwoSidedIndex(pts, sc, opts)
				if err != nil {
					// Pages too small for the node payload must fail with a
					// clear error, not build something broken.
					if ps <= 128 {
						t.Logf("%v rejects page %d: %v", sc, ps, err)
						continue
					}
					t.Fatalf("%v: %v", sc, err)
				}
				for _, q := range qs2 {
					got, err := ix.Query(q.A, q.B)
					if err != nil {
						t.Fatal(err)
					}
					if want := bruteTwoSided(pts, q.A, q.B); !samePointSets(got, want) {
						t.Fatalf("%v page=%d query (%d,%d): got %d want %d",
							sc, ps, q.A, q.B, len(got), len(want))
					}
				}
			}
			three, err := NewThreeSidedIndex(pts, opts)
			if err != nil {
				if ps <= 128 {
					t.Skipf("structures reject page %d: %v", ps, err)
				}
				t.Fatal(err)
			}
			win, err := NewWindowIndex(pts, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs3 {
				got, err := three.Query(q.A1, q.A2, q.B)
				if err != nil {
					t.Fatal(err)
				}
				var want []Point
				for _, p := range pts {
					if p.X >= q.A1 && p.X <= q.A2 && p.Y >= q.B {
						want = append(want, p)
					}
				}
				if !samePointSets(got, want) {
					t.Fatalf("3-sided page=%d: got %d want %d", ps, len(got), len(want))
				}
				gotW, err := win.Query(q.A1, q.A2, q.B, 1<<40)
				if err != nil {
					t.Fatal(err)
				}
				if !samePointSets(gotW, want) {
					t.Fatalf("window page=%d: got %d want %d", ps, len(gotW), len(want))
				}
			}
			seg, err := NewSegmentIndex(ivs, true, opts)
			if err != nil {
				if ps <= 128 {
					t.Skipf("segment index rejects page %d: %v", ps, err)
				}
				t.Fatal(err)
			}
			itv, err := NewIntervalIndex(ivs, true, opts)
			if err != nil {
				if ps <= 128 {
					t.Skipf("interval index rejects page %d: %v", ps, err)
				}
				t.Fatal(err)
			}
			for _, q := range stabs {
				want := bruteStab(ivs, q)
				if got, err := seg.Stab(q); err != nil || !sameIntervalSets(got, want) {
					t.Fatalf("segment page=%d stab %d (err=%v)", ps, q, err)
				}
				if got, err := itv.Stab(q); err != nil || !sameIntervalSets(got, want) {
					t.Fatalf("interval page=%d stab %d (err=%v)", ps, q, err)
				}
			}
			// Dynamic structures on small pages.
			dyn, err := NewDynamicIndex(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := dyn.BulkLoad(pts[:1000]); err != nil {
				t.Fatal(err)
			}
			for _, p := range pts[1000:1400] {
				if err := dyn.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range pts[:300] {
				if err := dyn.Delete(p); err != nil {
					t.Fatal(err)
				}
			}
			live := append(append([]Point(nil), pts[300:1000]...), pts[1000:1400]...)
			q := qs2[0]
			got, err := dyn.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteTwoSided(live, q.A, q.B); !samePointSets(got, want) {
				t.Fatalf("dynamic page=%d: got %d want %d", ps, len(got), len(want))
			}
		})
	}
}
