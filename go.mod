module pathcache

go 1.22
