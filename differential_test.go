package pathcache

import (
	"math/rand"
	"testing"
)

// Randomized differential tests: drive the dynamic external structures
// through long seeded insert/delete/query interleavings and compare every
// query against a flat in-memory model. Runs are deterministic per seed and
// race-clean (each subtest owns its index), so `go test -race` exercises the
// sharded buffer-pool paths underneath as well.

// diffModel is the flat reference: a multiset of points with brute-force
// range queries.
type diffModel struct {
	pts []Point
}

func (m *diffModel) insert(p Point) { m.pts = append(m.pts, p) }

func (m *diffModel) delete(p Point) bool {
	for i := range m.pts {
		if m.pts[i] == p {
			m.pts[i] = m.pts[len(m.pts)-1]
			m.pts = m.pts[:len(m.pts)-1]
			return true
		}
	}
	return false
}

func (m *diffModel) twoSided(a, b int64) []Point {
	var out []Point
	for _, p := range m.pts {
		if p.X >= a && p.Y >= b {
			out = append(out, p)
		}
	}
	return out
}

func (m *diffModel) threeSided(a1, a2, b int64) []Point {
	var out []Point
	for _, p := range m.pts {
		if a1 <= p.X && p.X <= a2 && p.Y >= b {
			out = append(out, p)
		}
	}
	return out
}

func randPoint(rng *rand.Rand, id uint64) Point {
	return Point{X: rng.Int63n(500), Y: rng.Int63n(500), ID: id}
}

func TestDynamicIndexDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ix, err := NewDynamicIndex(&Options{PageSize: 512, BufferPoolPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			model := &diffModel{}
			nextID := uint64(1)

			// Start from a bulk load so compaction has standing structure.
			var init []Point
			for i := 0; i < 64; i++ {
				p := randPoint(rng, nextID)
				nextID++
				init = append(init, p)
				model.insert(p)
			}
			if err := ix.BulkLoad(init); err != nil {
				t.Fatal(err)
			}

			for op := 0; op < 600; op++ {
				switch r := rng.Intn(10); {
				case r < 5: // insert
					p := randPoint(rng, nextID)
					nextID++
					if err := ix.Insert(p); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					model.insert(p)
				case r < 7 && len(model.pts) > 0: // delete a live point
					p := model.pts[rng.Intn(len(model.pts))]
					if err := ix.Delete(p); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					model.delete(p)
				default: // query
					a, b := rng.Int63n(500), rng.Int63n(500)
					got, err := ix.Query(a, b)
					if err != nil {
						t.Fatalf("op %d query(%d,%d): %v", op, a, b, err)
					}
					if !samePoints(got, model.twoSided(a, b)) {
						t.Fatalf("op %d query(%d,%d): diverged from model (%d vs %d results)",
							op, a, b, len(got), len(model.twoSided(a, b)))
					}
				}
				if ix.Len() != len(model.pts) {
					t.Fatalf("op %d: Len %d, model %d", op, ix.Len(), len(model.pts))
				}
			}
		})
	}
}

func TestDynamicThreeSidedIndexDifferential(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ix, err := NewDynamicThreeSidedIndex(&Options{PageSize: 512, BufferPoolPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			model := &diffModel{}
			nextID := uint64(1)
			var init []Point
			for i := 0; i < 48; i++ {
				p := randPoint(rng, nextID)
				nextID++
				init = append(init, p)
				model.insert(p)
			}
			if err := ix.BulkLoad(init); err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 500; op++ {
				switch r := rng.Intn(10); {
				case r < 5:
					p := randPoint(rng, nextID)
					nextID++
					if err := ix.Insert(p); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					model.insert(p)
				case r < 7 && len(model.pts) > 0:
					p := model.pts[rng.Intn(len(model.pts))]
					if err := ix.Delete(p); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					model.delete(p)
				default:
					a1, a2 := rng.Int63n(500), rng.Int63n(500)
					if a1 > a2 {
						a1, a2 = a2, a1
					}
					b := rng.Int63n(500)
					got, err := ix.Query(a1, a2, b)
					if err != nil {
						t.Fatalf("op %d query(%d,%d,%d): %v", op, a1, a2, b, err)
					}
					if !samePoints(got, model.threeSided(a1, a2, b)) {
						t.Fatalf("op %d query(%d,%d,%d): diverged from model (%d vs %d results)",
							op, a1, a2, b, len(got), len(model.threeSided(a1, a2, b)))
					}
				}
				if ix.Len() != len(model.pts) {
					t.Fatalf("op %d: Len %d, model %d", op, ix.Len(), len(model.pts))
				}
			}
		})
	}
}
